//! Results of one discovery run, with the runtime breakdown and quality
//! metrics the paper's evaluation reads off (§3.3: MRR, runtime, efficiency).

use crate::StrategyKind;
use kgfd_kg::{RelationId, Triple};
use std::time::Duration;

/// One discovered fact: a triple absent from the input graph that ranked
/// within `top_n` against its corruptions.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DiscoveredFact {
    /// The candidate triple.
    pub triple: Triple,
    /// Its rank (mean of subject- and object-side filtered ranks; 1 = best).
    pub rank: f64,
}

/// Per-relation accounting of the discovery loop.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RelationBreakdown {
    /// The relation facts were generated for.
    pub relation: RelationId,
    /// Candidates generated (after de-duplication and seen-filtering).
    pub candidates: usize,
    /// Candidates that survived the `top_n` filter.
    pub facts: usize,
    /// Candidates rejected by structural pruning rules (0 unless
    /// `prune_with_rules` is set).
    pub pruned: usize,
    /// Generation-loop iterations used (≤ `max_iterations`).
    pub iterations: usize,
    /// Time in the sampling/mesh-grid loop.
    pub generation: Duration,
    /// Time ranking candidates against corruptions.
    pub evaluation: Duration,
}

/// The output of [`crate::discover_facts`].
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct DiscoveryReport {
    /// Strategy that produced this report.
    pub strategy: StrategyKind,
    /// The `top_n` quality threshold used.
    pub top_n: usize,
    /// The per-relation candidate budget used.
    pub max_candidates: usize,
    /// All discovered facts with their ranks.
    pub facts: Vec<DiscoveredFact>,
    /// Per-relation breakdown in processing order.
    pub per_relation: Vec<RelationBreakdown>,
    /// Time spent computing the strategy's node measures (degree/triangles/
    /// coefficients) — the superlinear part that separates the two runtime
    /// groups of Figure 2.
    pub preparation: Duration,
    /// Total time in candidate generation.
    pub generation: Duration,
    /// Total time ranking candidates.
    pub evaluation: Duration,
    /// Wall-clock for the whole run.
    pub total: Duration,
}

impl DiscoveryReport {
    /// MRR of the discovered facts (paper Eq. 7) — the quality metric of
    /// Figure 4. Zero when nothing was discovered.
    pub fn mrr(&self) -> f64 {
        if self.facts.is_empty() {
            return 0.0;
        }
        self.facts.iter().map(|f| 1.0 / f.rank).sum::<f64>() / self.facts.len() as f64
    }

    /// Total candidates generated across relations.
    pub fn candidates_generated(&self) -> usize {
        self.per_relation.iter().map(|r| r.candidates).sum()
    }

    /// Discovery efficiency in facts per second (§3.3: facts divided by the
    /// total runtime, which spans generation *and* evaluation).
    pub fn facts_per_second(&self) -> f64 {
        let secs = self.total.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.facts.len() as f64 / secs
    }

    /// Discovery efficiency in facts per hour — the unit of Figure 6.
    pub fn facts_per_hour(&self) -> f64 {
        self.facts_per_second() * 3600.0
    }

    /// The ranks of all facts (parallel to `facts`), as used by Eq. 7.
    pub fn ranks(&self) -> Vec<f64> {
        self.facts.iter().map(|f| f.rank).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with_ranks(ranks: &[f64], total: Duration) -> DiscoveryReport {
        DiscoveryReport {
            strategy: StrategyKind::UniformRandom,
            top_n: 500,
            max_candidates: 500,
            facts: ranks
                .iter()
                .map(|&rank| DiscoveredFact {
                    triple: Triple::new(0u32, 0u32, 1u32),
                    rank,
                })
                .collect(),
            per_relation: vec![],
            preparation: Duration::ZERO,
            generation: Duration::ZERO,
            evaluation: Duration::ZERO,
            total,
        }
    }

    #[test]
    fn mrr_matches_eq7() {
        let r = report_with_ranks(&[1.0, 2.0, 4.0], Duration::from_secs(1));
        assert!((r.mrr() - 7.0 / 12.0).abs() < 1e-12);
        assert_eq!(report_with_ranks(&[], Duration::from_secs(1)).mrr(), 0.0);
    }

    #[test]
    fn efficiency_units() {
        let r = report_with_ranks(&[1.0; 10], Duration::from_secs(5));
        assert!((r.facts_per_second() - 2.0).abs() < 1e-9);
        assert!((r.facts_per_hour() - 7200.0).abs() < 1e-6);
    }

    #[test]
    fn zero_duration_does_not_divide_by_zero() {
        let r = report_with_ranks(&[1.0], Duration::ZERO);
        assert_eq!(r.facts_per_second(), 0.0);
    }
}
