//! Graph-global node measures backing the side-agnostic strategies.
//!
//! Computed once per discovery run and shared across relations — the cost
//! asymmetry between the "cheap" strategies (uniform/frequency/degree, all
//! linear) and the triangle- and square-based ones (superlinear) is exactly
//! what the paper's runtime figures (Figure 2, §4.3) measure, so preparation
//! time is tracked separately in the discovery report.

use crate::StrategyKind;
use kgfd_graph_stats::{
    local_clustering_coefficients, local_triangle_counts, occurrence_degrees,
    square_clustering_coefficients, UndirectedAdjacency,
};
use kgfd_kg::{EntityId, TripleStore};

/// Per-entity weight source for one strategy.
#[derive(Debug, Clone)]
pub enum Measures {
    /// No global measure: weights come from the per-relation pool itself
    /// (UNIFORM RANDOM and ENTITY FREQUENCY).
    PoolLocal,
    /// A global per-entity non-negative measure (degree, triangles,
    /// clustering coefficient, squares coefficient).
    Global(Vec<f64>),
}

impl Measures {
    /// Computes whatever `strategy` needs on `store`.
    pub fn compute(strategy: StrategyKind, store: &TripleStore) -> Measures {
        match strategy {
            StrategyKind::UniformRandom | StrategyKind::EntityFrequency => Measures::PoolLocal,
            StrategyKind::GraphDegree => Measures::Global(
                occurrence_degrees(store)
                    .into_iter()
                    .map(|d| d as f64)
                    .collect(),
            ),
            StrategyKind::ClusteringTriangles => {
                let adj = UndirectedAdjacency::from_store(store);
                Measures::Global(
                    local_triangle_counts(&adj)
                        .into_iter()
                        .map(|t| t as f64)
                        .collect(),
                )
            }
            StrategyKind::ClusteringCoefficient => {
                let adj = UndirectedAdjacency::from_store(store);
                Measures::Global(local_clustering_coefficients(&adj))
            }
            StrategyKind::ClusteringSquares => {
                let adj = UndirectedAdjacency::from_store(store);
                Measures::Global(square_clustering_coefficients(&adj))
            }
            StrategyKind::PageRank => {
                let adj = UndirectedAdjacency::from_store(store);
                Measures::Global(kgfd_graph_stats::pagerank(&adj, 0.85, 100, 1e-9))
            }
        }
    }

    /// The measure value of one entity (1.0 under [`Measures::PoolLocal`],
    /// where the pool supplies the weights instead).
    pub fn value(&self, e: EntityId) -> f64 {
        match self {
            Measures::PoolLocal => 1.0,
            Measures::Global(v) => v[e.index()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgfd_kg::Triple;

    fn triangle_plus_pendant() -> TripleStore {
        TripleStore::new(
            4,
            1,
            vec![
                Triple::new(0u32, 0u32, 1u32),
                Triple::new(1u32, 0u32, 2u32),
                Triple::new(2u32, 0u32, 0u32),
                Triple::new(2u32, 0u32, 3u32),
            ],
        )
        .unwrap()
    }

    #[test]
    fn pool_local_strategies_have_unit_measure() {
        let store = triangle_plus_pendant();
        for kind in [StrategyKind::UniformRandom, StrategyKind::EntityFrequency] {
            let m = Measures::compute(kind, &store);
            assert_eq!(m.value(EntityId(0)), 1.0);
            assert_eq!(m.value(EntityId(3)), 1.0);
        }
    }

    #[test]
    fn degree_measure_matches_occurrences() {
        let store = triangle_plus_pendant();
        let m = Measures::compute(StrategyKind::GraphDegree, &store);
        assert_eq!(m.value(EntityId(2)), 3.0);
        assert_eq!(m.value(EntityId(3)), 1.0);
    }

    #[test]
    fn triangle_measure_ignores_pendants() {
        let store = triangle_plus_pendant();
        let m = Measures::compute(StrategyKind::ClusteringTriangles, &store);
        assert_eq!(m.value(EntityId(0)), 1.0);
        assert_eq!(m.value(EntityId(3)), 0.0);
    }

    #[test]
    fn coefficient_penalizes_hubs() {
        // The star-graph example of §4.2.2: popular hub, zero coefficient.
        let star = TripleStore::new(
            5,
            1,
            vec![
                Triple::new(0u32, 0u32, 1u32),
                Triple::new(0u32, 0u32, 2u32),
                Triple::new(0u32, 0u32, 3u32),
                Triple::new(0u32, 0u32, 4u32),
            ],
        )
        .unwrap();
        let deg = Measures::compute(StrategyKind::GraphDegree, &star);
        let coeff = Measures::compute(StrategyKind::ClusteringCoefficient, &star);
        assert!(deg.value(EntityId(0)) > deg.value(EntityId(1)));
        assert_eq!(coeff.value(EntityId(0)), 0.0);
    }

    #[test]
    fn pagerank_measure_favors_hubs() {
        let star = TripleStore::new(
            4,
            1,
            vec![
                Triple::new(0u32, 0u32, 1u32),
                Triple::new(0u32, 0u32, 2u32),
                Triple::new(0u32, 0u32, 3u32),
            ],
        )
        .unwrap();
        let m = Measures::compute(StrategyKind::PageRank, &star);
        assert!(m.value(EntityId(0)) > m.value(EntityId(1)));
    }

    #[test]
    fn squares_measure_detects_four_cycles() {
        let square = TripleStore::new(
            4,
            1,
            vec![
                Triple::new(0u32, 0u32, 1u32),
                Triple::new(1u32, 0u32, 2u32),
                Triple::new(2u32, 0u32, 3u32),
                Triple::new(3u32, 0u32, 0u32),
            ],
        )
        .unwrap();
        let m = Measures::compute(StrategyKind::ClusteringSquares, &square);
        for e in 0..4 {
            assert!((m.value(EntityId(e)) - 1.0).abs() < 1e-12);
        }
    }
}
