//! # fact-discovery — discovering facts from knowledge graph embeddings
//!
//! A from-scratch Rust implementation of the fact-discovery system evaluated
//! in *"Evaluation of Sampling Methods for Discovering Facts from Knowledge
//! Graph Embeddings"* (EDBT 2024): given only a knowledge graph and a KGE
//! model trained on it — no queries, no test data — find triples in the
//! graph's complement that the model considers highly plausible.
//!
//! The exhaustive alternative is hopeless (`|E|² × |R| − |G|` candidates;
//! ~533 × 10⁹ for YAGO3-10). Instead, [`discover_facts`] implements the
//! paper's Algorithm 1: per relation, *sample* subject/object entities with
//! one of six [`StrategyKind`] weightings, mesh-grid them into candidates,
//! and keep those the model ranks within `top_n` of their corruptions.
//!
//! ```
//! use kgfd_datasets::toy_biomedical;
//! use kgfd_embed::{train, ModelKind, TrainConfig};
//! use fact_discovery::{discover_facts, DiscoveryConfig, StrategyKind};
//!
//! let data = toy_biomedical();
//! let (model, _) = train(ModelKind::ComplEx, &data.train,
//!                        &TrainConfig { epochs: 30, ..TrainConfig::default() });
//! let config = DiscoveryConfig {
//!     strategy: StrategyKind::EntityFrequency,
//!     top_n: 10,
//!     max_candidates: 50,
//!     ..DiscoveryConfig::default()
//! };
//! let report = discover_facts(model.as_ref(), &data.train, &config);
//! for fact in &report.facts {
//!     assert!(!data.train.contains(&fact.triple)); // all facts are novel
//! }
//! println!("{} facts, MRR {:.3}", report.facts.len(), report.mrr());
//! ```

#![warn(missing_docs)]

mod discover;
mod measures;
mod pruning;
mod report;
mod sampler;
mod strategy;
pub mod streaming;
mod weights;

pub use discover::{
    discover_facts, discover_facts_materialized, try_discover_facts, DiscoveryConfig,
};
pub use measures::Measures;
pub use pruning::CandidateRules;
pub use report::{DiscoveredFact, DiscoveryReport, RelationBreakdown};
pub use sampler::{AliasSampler, CdfSampler};
pub use strategy::StrategyKind;
pub use streaming::{cached_measures, fact_order, CandidateStream, TopKFacts};
pub use weights::{compute_weights, normalize_or_uniform, validate_weights};
