//! `DiscoverFacts` — Algorithm 1 of the paper, as a streaming engine.
//!
//! For each relation `r` of the input graph: weight the per-relation
//! subject/object entity pools with the chosen strategy, sample
//! `⌊√max_candidates⌋ + 10` entities per side, take the mesh-grid cross
//! product with `r`, drop triples already in the graph, and repeat (at most
//! `max_iterations` times, the paper's constant 5) until `max_candidates`
//! candidates exist. Candidates are then ranked against their corruptions
//! (filtered by the training graph) and those ranking within `top_n` are
//! returned as facts.
//!
//! [`discover_facts`] runs this **streamed**: each relation's candidates are
//! produced by a [`CandidateStream`] iterator and scored `chunk_size` at a
//! time, with kept facts held in a bounded [`TopKFacts`] heap — the live
//! candidate footprint per relation is `chunk_size + top_k`, independent of
//! `max_candidates`. The original materialize-everything path survives as
//! [`discover_facts_materialized`], the reference oracle the conformance
//! suite (`tests/discovery_streaming.rs`) checks the stream against: facts
//! and ranks are **bit-identical** between the two at any chunk size and
//! thread count.

use crate::streaming::{cached_measures, CandidateStream, TopKFacts};
use crate::{
    compute_weights, AliasSampler, CandidateRules, DiscoveredFact, DiscoveryReport, Measures,
    RelationBreakdown, StrategyKind,
};
use fxhash::{FxBuildHasher, FxHashSet};
use kgfd_embed::KgeModel;
use kgfd_eval::rank_all;
use kgfd_kg::{EntityId, KgError, KnownTriples, RelationId, SideIndex, Triple, TripleStore};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// Configuration of one discovery run (the inputs of Algorithm 1).
#[derive(Debug, Clone)]
pub struct DiscoveryConfig {
    /// Sampling strategy for `compute_weights`.
    pub strategy: StrategyKind,
    /// Maximum rank a candidate may have to count as a fact (paper: 500).
    pub top_n: usize,
    /// Candidate budget per relation (paper: 500).
    pub max_candidates: usize,
    /// Generation-loop bound (the paper's default constant 5; surfaced as a
    /// parameter because §3.1.1 notes it "could arguably be treated as
    /// another hyperparameter").
    pub max_iterations: usize,
    /// Restrict discovery to these relations (`None` = all used relations,
    /// as in Algorithm 1 line 3).
    pub relations: Option<Vec<RelationId>>,
    /// Mixes this fraction of uniform probability into every strategy's
    /// weights — the exploration/exploitation dial the paper's §6 calls for
    /// (`0.0` = the paper's pure-exploitation behaviour). Must be finite;
    /// [`try_discover_facts`] rejects NaN/∞ with a typed error.
    pub exploration_epsilon: f64,
    /// Sample from graph-global side pools instead of per-relation pools
    /// (AmpliGraph's `consolidate_sides=True`); reaches entities never seen
    /// with the target relation, at the cost of more implausible candidates.
    pub consolidate_sides: bool,
    /// Mine CHAI-style structural rules (functionality, self-loops) from the
    /// graph and prune candidates before the ranking step (§5.1, §6).
    pub prune_with_rules: bool,
    /// Apply the paper's Definition 2.1 literally: keep only facts whose
    /// *calibrated probability* exceeds the threshold, in addition to the
    /// `top_n` rank filter. Fit the [`kgfd_eval::Calibration`] on validation
    /// data; `None` (default) reproduces the paper's rank-only behaviour.
    pub min_probability: Option<(kgfd_eval::Calibration, f64)>,
    /// Sampling seed; runs are deterministic given it.
    pub seed: u64,
    /// Worker threads for candidate ranking.
    pub threads: usize,
    /// Candidates scored per streaming batch — the engine's working-set
    /// bound. Behaviourally invisible: facts and ranks are bit-identical at
    /// any chunk size; only memory and batching granularity change. Values
    /// below 1 are treated as 1.
    pub chunk_size: usize,
    /// Keep only the `k` best facts *per relation* under the total order
    /// `(rank, subject, relation, object)` (see
    /// [`crate::streaming::fact_order`]), held in a bounded heap during the
    /// run. `None` (default) keeps every fact within `top_n` — the paper's
    /// behaviour, bit-identical to [`discover_facts_materialized`].
    pub top_k: Option<usize>,
    /// Cooperative wall-clock budget for the run. Checked at every
    /// streaming chunk boundary (the engine's natural preemption points);
    /// once the instant passes, the run stops with
    /// [`KgError::DeadlineExceeded`] instead of completing — partial facts
    /// are discarded so a timed-out run never looks like a short one.
    /// `None` (default) = unbounded. Use [`try_discover_facts`] when
    /// setting this; the panicking wrapper treats the timeout as fatal.
    pub deadline: Option<std::time::Instant>,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        DiscoveryConfig {
            strategy: StrategyKind::UniformRandom,
            top_n: 500,
            max_candidates: 500,
            max_iterations: 5,
            relations: None,
            exploration_epsilon: 0.0,
            consolidate_sides: false,
            prune_with_rules: false,
            min_probability: None,
            seed: 0,
            threads: std::thread::available_parallelism()
                .map(|p| p.get().min(8))
                .unwrap_or(1),
            chunk_size: 128,
            top_k: None,
            deadline: None,
        }
    }
}

/// Which candidate path a run uses. The streaming engine is the production
/// path; the materialized one is the reference oracle.
#[derive(Clone, Copy)]
enum Engine {
    Streaming,
    Materialized,
}

/// Runs Algorithm 1: discovers facts absent from `store` that `model` ranks
/// within `config.top_n` of their corruptions. Candidates stream through
/// the scorer in `config.chunk_size` batches, so memory per relation is
/// bounded by `chunk_size + top_k` rather than `max_candidates`.
///
/// Panics if the configuration is invalid (non-finite
/// `exploration_epsilon`); use [`try_discover_facts`] for a typed error.
pub fn discover_facts(
    model: &dyn KgeModel,
    store: &TripleStore,
    config: &DiscoveryConfig,
) -> DiscoveryReport {
    try_discover_facts(model, store, config).expect("invalid discovery configuration")
}

/// [`discover_facts`] with configuration validation: rejects a non-finite
/// `exploration_epsilon` with [`KgError::Invariant`] instead of silently
/// treating NaN as "no exploration".
pub fn try_discover_facts(
    model: &dyn KgeModel,
    store: &TripleStore,
    config: &DiscoveryConfig,
) -> Result<DiscoveryReport, KgError> {
    if !config.exploration_epsilon.is_finite() {
        return Err(KgError::Invariant(format!(
            "exploration_epsilon must be finite, got {}",
            config.exploration_epsilon
        )));
    }
    run_discovery(model, store, config, Engine::Streaming)
}

/// The pre-streaming reference implementation: materializes every candidate
/// for a relation before ranking (peak memory O(`max_candidates`) per
/// relation) and keeps every fact within `top_n`, ignoring `chunk_size` and
/// `top_k`. Kept as the oracle for the differential conformance suite —
/// with `top_k = None` the streaming engine's output is bit-identical to
/// this path's.
pub fn discover_facts_materialized(
    model: &dyn KgeModel,
    store: &TripleStore,
    config: &DiscoveryConfig,
) -> DiscoveryReport {
    run_discovery(model, store, config, Engine::Materialized).expect("discovery worker panicked")
}

/// Maps a pool failure (a panicked relation worker) to the typed error the
/// discovery API surfaces instead of hanging or aborting the process.
fn worker_panic_error(e: kgfd_pool::PoolError) -> KgError {
    KgError::WorkerPanic(e.to_string())
}

/// Shared orchestration: preparation, the relation fan-out (sequential or
/// dispatched onto the persistent pool), and report assembly. Identical for
/// both engines so a conformance divergence can only come from the
/// per-relation paths.
fn run_discovery(
    model: &dyn KgeModel,
    store: &TripleStore,
    config: &DiscoveryConfig,
    engine: Engine,
) -> Result<DiscoveryReport, KgError> {
    let total_span = kgfd_obs::span!("discover.total", strategy = config.strategy.to_string());

    let prep_span = kgfd_obs::span!(
        "discover.preparation",
        strategy = config.strategy.to_string()
    );
    // The streaming engine shares measure tables across runs via the
    // (fingerprint, strategy) cache; the oracle recomputes from scratch so
    // the two paths cannot accidentally share a wrong table.
    let cached;
    let owned;
    let measures: &Measures = match engine {
        Engine::Streaming => {
            cached = cached_measures(config.strategy, store);
            cached.as_ref()
        }
        Engine::Materialized => {
            owned = Measures::compute(config.strategy, store);
            &owned
        }
    };
    let known = KnownTriples::from_slices([store.triples()]);
    let rules = config
        .prune_with_rules
        .then(|| CandidateRules::learn(store, 5));
    let consolidated = config.consolidate_sides.then(|| {
        (
            global_side_index(store, kgfd_kg::Side::Subject),
            global_side_index(store, kgfd_kg::Side::Object),
        )
    });
    let preparation = prep_span.finish();

    let relations = config
        .relations
        .clone()
        .unwrap_or_else(|| store.used_relations());
    // Line 4: the mesh grid is sample_size², so √max_candidates (+10 slack)
    // entities per side fill the budget in one iteration in expectation.
    let sample_size = (config.max_candidates as f64).sqrt() as usize + 10;

    let run_one = |r: RelationId, rank_threads: usize| -> Result<RelationOutcome, KgError> {
        match engine {
            Engine::Streaming => discover_relation_streaming(
                model,
                store,
                config,
                r,
                measures,
                &known,
                rules.as_ref(),
                consolidated.as_ref(),
                rank_threads,
            ),
            Engine::Materialized => Ok(discover_relation_materialized(
                model,
                store,
                config,
                r,
                measures,
                &known,
                rules.as_ref(),
                consolidated.as_ref(),
                sample_size,
                rank_threads,
            )),
        }
    };

    // Relations are embarrassingly parallel: each draws from its own
    // seed-derived RNG stream and sees only shared read-only state, so the
    // outcome of one never depends on which others run or where. Pool
    // workers take contiguous chunks and results merge in relation order,
    // keeping the report byte-identical to a sequential run at any thread
    // count. When the outer loop is parallel, per-relation candidate
    // ranking runs single-threaded — the relation fan-out already owns the
    // budget (a nested ranking scope would fall back to inline execution on
    // the pool anyway).
    let workers = config.threads.max(1).min(relations.len().max(1));
    let outcomes: Vec<RelationOutcome> = if workers <= 1 {
        relations
            .iter()
            .map(|&r| {
                // Trace-only: groups this relation's generation/evaluation
                // spans in trace exports without adding per-relation events.
                let _rel_span = kgfd_obs::span_traced!("discover.relation", relation = r.0);
                run_one(r, config.threads)
            })
            .collect::<Result<_, _>>()?
    } else {
        let per_worker = relations.len().div_ceil(workers);
        let mut collected = Vec::with_capacity(relations.len());
        // Pool workers have an empty span stack; hand the root span over
        // explicitly so every per-relation span still nests under it.
        let total_handle = total_span.handle();
        let run_one = &run_one;
        kgfd_pool::scope(|scope| {
            let handles: Vec<_> = relations
                .chunks(per_worker)
                .map(|part| {
                    scope.spawn(move || {
                        part.iter()
                            .map(|&r| {
                                let _rel_span = kgfd_obs::Span::child_for_thread_with_fields(
                                    total_handle,
                                    "discover.relation",
                                    vec![kgfd_obs::Field::new("relation", r.0)],
                                );
                                run_one(r, 1)
                            })
                            .collect::<Result<Vec<_>, KgError>>()
                    })
                })
                .collect();
            // Join *every* handle before surfacing an error: a typed
            // propagation must not leave panicked-but-unclaimed jobs for
            // the scope exit to resume.
            let joined: Vec<_> = handles.into_iter().map(|h| h.try_join()).collect();
            for part in joined {
                collected.extend(part.map_err(worker_panic_error)??);
            }
            Ok::<(), KgError>(())
        })?;
        collected
    };

    let mut facts = Vec::new();
    let mut per_relation = Vec::with_capacity(outcomes.len());
    let mut generation = Duration::ZERO;
    let mut evaluation = Duration::ZERO;
    for outcome in outcomes {
        generation += outcome.breakdown.generation;
        evaluation += outcome.breakdown.evaluation;
        facts.extend(outcome.facts);
        per_relation.push(outcome.breakdown);
    }

    Ok(DiscoveryReport {
        strategy: config.strategy,
        top_n: config.top_n,
        max_candidates: config.max_candidates,
        facts,
        per_relation,
        preparation,
        generation,
        evaluation,
        total: total_span.finish(),
    })
}

/// One relation's share of a discovery run: its kept facts plus the
/// [`RelationBreakdown`] bookkeeping row.
struct RelationOutcome {
    facts: Vec<DiscoveredFact>,
    breakdown: RelationBreakdown,
}

/// Streaming generation + ranking for a single relation: pull up to
/// `chunk_size` candidates from the [`CandidateStream`], rank the chunk,
/// push survivors into the bounded [`TopKFacts`] heap, repeat until the
/// stream runs dry. Deterministic given `config.seed` and `r` alone — safe
/// to run for many relations concurrently — and bit-identical to
/// [`discover_relation_materialized`] when `top_k` is `None`.
///
/// Observability: each chunk opens trace-only `discover.generation` /
/// `discover.evaluation` spans (so trace trees nest the ranking kernels
/// correctly), and the per-phase totals are then emitted as *one* aggregate
/// SpanEnd event per phase — sinks see exactly the same event shape as the
/// materialized path. Peak working set is published on the
/// `discover.stream.peak_buffer` gauge; per-chunk throughput on the
/// `discover.stream.chunks` counter and `discover.stream.chunk_candidates`
/// / `discover.stream.chunk_us` histograms.
#[allow(clippy::too_many_arguments)]
fn discover_relation_streaming(
    model: &dyn KgeModel,
    store: &TripleStore,
    config: &DiscoveryConfig,
    r: RelationId,
    measures: &Measures,
    known: &KnownTriples,
    rules: Option<&CandidateRules>,
    consolidated: Option<&(SideIndex, SideIndex)>,
    rank_threads: usize,
) -> Result<RelationOutcome, KgError> {
    // Stream setup (pool resolution, weights, alias tables) is generation
    // work; time it under the same phase as the draw loop.
    let setup_span = kgfd_obs::span_traced!("discover.generation", relation = r.0);
    let mut stream = CandidateStream::for_relation(store, config, r, measures, rules, consolidated)
        .expect("built-in strategies produce finite weights");
    let mut generation = setup_span.finish();
    let mut evaluation = Duration::ZERO;

    let chunk_size = config.chunk_size.max(1);
    let mut top = TopKFacts::new(config.top_k);
    let mut chunk: Vec<Triple> = Vec::with_capacity(chunk_size.min(config.max_candidates));
    let mut peak_buffer = 0usize;
    loop {
        // Chunk boundaries are the engine's preemption points: between
        // chunks no pool job is in flight, so stopping here loses at most
        // one chunk of work and never strands a ranking kernel.
        if let Some(deadline) = config.deadline {
            if std::time::Instant::now() >= deadline {
                kgfd_obs::counter("discover.deadline_exceeded").inc();
                return Err(KgError::DeadlineExceeded);
            }
        }
        chunk.clear();
        let gen_span = kgfd_obs::span_traced!("discover.generation", relation = r.0);
        stream.fill_chunk(&mut chunk, chunk_size);
        let gen_elapsed = gen_span.finish();
        generation += gen_elapsed;
        if chunk.is_empty() {
            break;
        }
        peak_buffer = peak_buffer.max(chunk.len() + top.len());

        // Lines 14–15 per chunk: rank candidates, keep those within top_n.
        let eval_span = kgfd_obs::span_traced!("discover.evaluation", relation = r.0);
        let ranks = rank_all(model, &chunk, Some(known), rank_threads);
        for (t, r2) in chunk.iter().zip(&ranks) {
            let rank = r2.mean();
            if rank > config.top_n as f64 {
                continue;
            }
            if let Some((calibration, threshold)) = &config.min_probability {
                if calibration.probability(model.score(*t)) <= *threshold {
                    continue;
                }
            }
            top.push(DiscoveredFact { triple: *t, rank });
        }
        let eval_elapsed = eval_span.finish();
        evaluation += eval_elapsed;
        peak_buffer = peak_buffer.max(chunk.len() + top.len());

        kgfd_obs::counter("discover.stream.chunks").inc();
        kgfd_obs::histogram("discover.stream.chunk_candidates").record(chunk.len() as f64);
        kgfd_obs::histogram("discover.stream.chunk_us")
            .record((gen_elapsed + eval_elapsed).as_micros() as f64);
    }
    // Running maximum across relations/threads: the engine's bounded-memory
    // contract (peak ≤ chunk_size + top_k) is asserted against this gauge.
    kgfd_obs::gauge("discover.stream.peak_buffer").set_max(peak_buffer as f64);

    // One aggregate event per phase per relation — same event stream shape
    // as the materialized path even though the phases interleave per chunk.
    kgfd_obs::emit_span_aggregate(
        "discover.generation",
        generation,
        vec![kgfd_obs::Field::new("relation", r.0)],
    );
    kgfd_obs::counter("discover.generation.candidates").add(stream.produced() as u64);
    kgfd_obs::counter("discover.generation.pruned").add(stream.pruned() as u64);
    kgfd_obs::emit_span_aggregate(
        "discover.evaluation",
        evaluation,
        vec![kgfd_obs::Field::new("relation", r.0)],
    );
    let facts = top.into_ordered();
    kgfd_obs::counter("discover.evaluation.facts").add(facts.len() as u64);

    let breakdown = RelationBreakdown {
        relation: r,
        candidates: stream.produced(),
        facts: facts.len(),
        pruned: stream.pruned(),
        iterations: stream.iterations(),
        generation,
        evaluation,
    };
    Ok(RelationOutcome { facts, breakdown })
}

/// Materialized generation + ranking for a single relation (Algorithm 1
/// lines 4–15 verbatim) — the oracle implementation, deliberately kept as
/// an independent transcription of the paper's loop rather than a wrapper
/// over [`CandidateStream`], so the conformance suite compares two real
/// implementations.
#[allow(clippy::too_many_arguments)]
fn discover_relation_materialized(
    model: &dyn KgeModel,
    store: &TripleStore,
    config: &DiscoveryConfig,
    r: RelationId,
    measures: &Measures,
    known: &KnownTriples,
    rules: Option<&CandidateRules>,
    consolidated: Option<&(SideIndex, SideIndex)>,
    sample_size: usize,
    rank_threads: usize,
) -> RelationOutcome {
    // Independent stream per relation: results do not depend on which
    // other relations run or in what order.
    let stream_seed = config
        .seed
        .wrapping_add((r.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut rng = StdRng::seed_from_u64(stream_seed);

    let gen_span = kgfd_obs::span!("discover.generation", relation = r.0);
    let (subject_pool, object_pool) = match consolidated {
        Some((s_pool, o_pool)) => (s_pool, o_pool),
        None => (store.subject_index(r), store.object_index(r)),
    };
    if subject_pool.is_empty() || object_pool.is_empty() {
        return RelationOutcome {
            facts: Vec::new(),
            breakdown: RelationBreakdown {
                relation: r,
                candidates: 0,
                facts: 0,
                pruned: 0,
                iterations: 0,
                generation: gen_span.finish(),
                evaluation: Duration::ZERO,
            },
        };
    }
    let mut s_weights = compute_weights(config.strategy, measures, subject_pool);
    let mut o_weights = compute_weights(config.strategy, measures, object_pool);
    if config.exploration_epsilon > 0.0 {
        mix_uniform(&mut s_weights, config.exploration_epsilon);
        mix_uniform(&mut o_weights, config.exploration_epsilon);
    }
    let s_sampler = AliasSampler::new(&s_weights);
    let o_sampler = AliasSampler::new(&o_weights);

    let mut local: Vec<Triple> = Vec::with_capacity(config.max_candidates);
    // Seeded fast-hash dedup: candidate volume is bounded by
    // `max_candidates`, so pre-size the set to skip rehashing; the seed keeps
    // bucket layout independent of any ambient hasher randomisation.
    let mut local_seen: FxHashSet<Triple> = FxHashSet::with_capacity_and_hasher(
        config.max_candidates * 2,
        FxBuildHasher::seeded(stream_seed),
    );
    let mut iterations = 0usize;
    let mut pruned = 0usize;
    while local.len() < config.max_candidates && iterations < config.max_iterations {
        iterations += 1;
        let s_samples: Vec<EntityId> = (0..sample_size)
            .map(|_| subject_pool.entities[s_sampler.sample(&mut rng)])
            .collect();
        let o_samples: Vec<EntityId> = (0..sample_size)
            .map(|_| object_pool.entities[o_sampler.sample(&mut rng)])
            .collect();
        // Lines 11–13: mesh grid, filter seen, append.
        'grid: for &s in &s_samples {
            for &o in &o_samples {
                let t = Triple {
                    subject: s,
                    relation: r,
                    object: o,
                };
                if store.contains(&t) || !local_seen.insert(t) {
                    continue;
                }
                if let Some(rules) = rules {
                    if !rules.admits(store, &t) {
                        pruned += 1;
                        continue;
                    }
                }
                local.push(t);
                if local.len() >= config.max_candidates {
                    break 'grid;
                }
            }
        }
    }
    let gen_elapsed = gen_span.finish();
    kgfd_obs::counter("discover.generation.candidates").add(local.len() as u64);
    kgfd_obs::counter("discover.generation.pruned").add(pruned as u64);

    // Lines 14–15: rank candidates, keep those within top_n.
    let eval_span = kgfd_obs::span!("discover.evaluation", relation = r.0);
    let ranks = rank_all(model, &local, Some(known), rank_threads);
    let mut facts = Vec::new();
    for (t, r2) in local.iter().zip(&ranks) {
        let rank = r2.mean();
        if rank > config.top_n as f64 {
            continue;
        }
        if let Some((calibration, threshold)) = &config.min_probability {
            if calibration.probability(model.score(*t)) <= *threshold {
                continue;
            }
        }
        facts.push(DiscoveredFact { triple: *t, rank });
    }
    let eval_elapsed = eval_span.finish();
    kgfd_obs::counter("discover.evaluation.facts").add(facts.len() as u64);

    let breakdown = RelationBreakdown {
        relation: r,
        candidates: local.len(),
        facts: facts.len(),
        pruned,
        iterations,
        generation: gen_elapsed,
        evaluation: eval_elapsed,
    };
    RelationOutcome { facts, breakdown }
}

/// Graph-global side pool: every entity occurring on `side` of any triple,
/// with its global occurrence count.
fn global_side_index(store: &TripleStore, side: kgfd_kg::Side) -> SideIndex {
    let counts = store.global_side_counts(side);
    let mut index = SideIndex::default();
    for (e, &c) in counts.iter().enumerate() {
        if c > 0 {
            index.entities.push(EntityId(e as u32));
            index.counts.push(c);
        }
    }
    index
}

/// `w ← (1 − ε) w + ε / n` — keeps every pool member reachable.
pub(crate) fn mix_uniform(weights: &mut [f64], epsilon: f64) {
    let epsilon = epsilon.clamp(0.0, 1.0);
    let u = epsilon / weights.len() as f64;
    for w in weights.iter_mut() {
        *w = (1.0 - epsilon) * *w + u;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgfd_datasets::toy_biomedical;
    use kgfd_embed::{train, ModelKind, TrainConfig};

    fn trained_toy() -> (kgfd_kg::Dataset, Box<dyn KgeModel>) {
        let data = toy_biomedical();
        let config = TrainConfig {
            dim: 16,
            epochs: 40,
            seed: 5,
            ..TrainConfig::default()
        };
        let (model, _) = train(ModelKind::ComplEx, &data.train, &config);
        (data, model)
    }

    fn quick_config(strategy: StrategyKind) -> DiscoveryConfig {
        DiscoveryConfig {
            strategy,
            top_n: 8,
            max_candidates: 30,
            seed: 1,
            threads: 2,
            ..DiscoveryConfig::default()
        }
    }

    #[test]
    fn discovered_facts_are_novel_and_within_top_n() {
        let (data, model) = trained_toy();
        for strategy in StrategyKind::ALL {
            let report = discover_facts(model.as_ref(), &data.train, &quick_config(strategy));
            for fact in &report.facts {
                assert!(
                    !data.train.contains(&fact.triple),
                    "{strategy}: rediscovered a training triple"
                );
                assert!(fact.rank <= 8.0, "{strategy}: rank above top_n");
                assert!(fact.rank >= 1.0);
            }
        }
    }

    #[test]
    fn streaming_matches_the_materialized_oracle() {
        // The root-level conformance suite sweeps every strategy × model ×
        // thread count; this is the fast in-crate smoke version.
        let (data, model) = trained_toy();
        for strategy in [StrategyKind::EntityFrequency, StrategyKind::GraphDegree] {
            let cfg = quick_config(strategy);
            let streamed = discover_facts(model.as_ref(), &data.train, &cfg);
            let oracle = discover_facts_materialized(model.as_ref(), &data.train, &cfg);
            assert_eq!(streamed.facts, oracle.facts, "{strategy}: facts diverged");
        }
    }

    #[test]
    fn chunk_size_never_changes_the_discovered_facts() {
        let (data, model) = trained_toy();
        let baseline = discover_facts(
            model.as_ref(),
            &data.train,
            &quick_config(StrategyKind::EntityFrequency),
        );
        for chunk_size in [1, 7, 10_000] {
            let mut cfg = quick_config(StrategyKind::EntityFrequency);
            cfg.chunk_size = chunk_size;
            let report = discover_facts(model.as_ref(), &data.train, &cfg);
            assert_eq!(
                report.facts, baseline.facts,
                "chunk_size {chunk_size} changed the facts"
            );
            for (a, b) in report.per_relation.iter().zip(&baseline.per_relation) {
                assert_eq!(a.candidates, b.candidates);
                assert_eq!(a.iterations, b.iterations);
                assert_eq!(a.pruned, b.pruned);
            }
        }
    }

    #[test]
    fn top_k_keeps_the_best_facts_in_generation_order() {
        let (data, model) = trained_toy();
        let base = quick_config(StrategyKind::EntityFrequency);
        let unbounded = discover_facts(model.as_ref(), &data.train, &base);
        let mut capped_cfg = base.clone();
        capped_cfg.top_k = Some(2);
        let capped = discover_facts(model.as_ref(), &data.train, &capped_cfg);

        for rel in &unbounded.per_relation {
            let all: Vec<DiscoveredFact> = unbounded
                .facts
                .iter()
                .filter(|f| f.triple.relation == rel.relation)
                .copied()
                .collect();
            // Expected: the 2 best under the total order, in their original
            // generation order.
            let mut best = all.clone();
            best.sort_by(crate::streaming::fact_order);
            best.truncate(2);
            let expected: Vec<DiscoveredFact> =
                all.iter().filter(|f| best.contains(f)).copied().collect();
            let got: Vec<DiscoveredFact> = capped
                .facts
                .iter()
                .filter(|f| f.triple.relation == rel.relation)
                .copied()
                .collect();
            assert_eq!(got, expected, "relation {:?}", rel.relation);
            assert!(got.len() <= 2);
        }
    }

    #[test]
    fn non_finite_epsilon_is_rejected_with_a_typed_error() {
        let (data, model) = trained_toy();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut cfg = quick_config(StrategyKind::UniformRandom);
            cfg.exploration_epsilon = bad;
            match try_discover_facts(model.as_ref(), &data.train, &cfg) {
                Err(KgError::Invariant(msg)) => {
                    assert!(msg.contains("exploration_epsilon"), "{msg}")
                }
                other => panic!("expected Invariant error, got {:?}", other.map(|r| r.facts)),
            }
        }
    }

    #[test]
    fn expired_deadline_yields_the_typed_timeout() {
        let (data, model) = trained_toy();
        for threads in [1, 2] {
            let mut cfg = quick_config(StrategyKind::UniformRandom);
            cfg.threads = threads;
            cfg.deadline = Some(std::time::Instant::now() - Duration::from_millis(1));
            match try_discover_facts(model.as_ref(), &data.train, &cfg) {
                Err(KgError::DeadlineExceeded) => {}
                other => panic!(
                    "threads={threads}: expected DeadlineExceeded, got {:?}",
                    other.map(|r| r.facts)
                ),
            }
        }
    }

    #[test]
    fn generous_deadline_changes_nothing() {
        let (data, model) = trained_toy();
        let base = quick_config(StrategyKind::EntityFrequency);
        let unbounded = discover_facts(model.as_ref(), &data.train, &base);
        let mut timed = base.clone();
        timed.deadline = Some(std::time::Instant::now() + Duration::from_secs(3600));
        let bounded = try_discover_facts(model.as_ref(), &data.train, &timed).unwrap();
        assert_eq!(unbounded.facts, bounded.facts);
    }

    #[test]
    fn span_derived_phase_durations_fit_inside_the_total() {
        let (data, model) = trained_toy();
        // Sequential run: with relations processed in parallel the summed
        // per-relation spans legitimately exceed the wall-clock total.
        let mut cfg = quick_config(StrategyKind::UniformRandom);
        cfg.threads = 1;
        let report = discover_facts(model.as_ref(), &data.train, &cfg);
        assert!(report.preparation + report.generation + report.evaluation <= report.total);
        let per_rel_gen: Duration = report.per_relation.iter().map(|r| r.generation).sum();
        let per_rel_eval: Duration = report.per_relation.iter().map(|r| r.evaluation).sum();
        assert_eq!(per_rel_gen, report.generation);
        assert_eq!(per_rel_eval, report.evaluation);
    }

    #[test]
    fn discovery_is_deterministic() {
        let (data, model) = trained_toy();
        let cfg = quick_config(StrategyKind::EntityFrequency);
        let a = discover_facts(model.as_ref(), &data.train, &cfg);
        let b = discover_facts(model.as_ref(), &data.train, &cfg);
        assert_eq!(a.facts, b.facts);
    }

    #[test]
    fn respects_per_relation_candidate_budget() {
        let (data, model) = trained_toy();
        let report = discover_facts(
            model.as_ref(),
            &data.train,
            &quick_config(StrategyKind::UniformRandom),
        );
        for rel in &report.per_relation {
            assert!(rel.candidates <= 30);
            assert!(rel.iterations <= 5);
            assert!(rel.facts <= rel.candidates);
        }
    }

    #[test]
    fn relation_restriction_is_honored() {
        let (data, model) = trained_toy();
        let treats = data.vocab.relation("treats").unwrap();
        let mut cfg = quick_config(StrategyKind::GraphDegree);
        cfg.relations = Some(vec![treats]);
        let report = discover_facts(model.as_ref(), &data.train, &cfg);
        assert_eq!(report.per_relation.len(), 1);
        assert!(report.facts.iter().all(|f| f.triple.relation == treats));
    }

    #[test]
    fn higher_top_n_discovers_at_least_as_many_facts() {
        // §4.3.1: top_n only loosens the filter; candidates are unchanged.
        let (data, model) = trained_toy();
        let mut tight = quick_config(StrategyKind::EntityFrequency);
        tight.top_n = 3;
        let mut loose = tight.clone();
        loose.top_n = 12;
        let a = discover_facts(model.as_ref(), &data.train, &tight);
        let b = discover_facts(model.as_ref(), &data.train, &loose);
        assert!(b.facts.len() >= a.facts.len());
        assert_eq!(
            a.candidates_generated(),
            b.candidates_generated(),
            "top_n must not affect generation"
        );
    }

    #[test]
    fn report_mrr_respects_threshold_floor() {
        // Every kept fact ranks ≤ top_n, so MRR ≥ 1/top_n (§4.2.2).
        let (data, model) = trained_toy();
        let report = discover_facts(
            model.as_ref(),
            &data.train,
            &quick_config(StrategyKind::ClusteringTriangles),
        );
        if !report.facts.is_empty() {
            assert!(report.mrr() >= 1.0 / 8.0 - 1e-12);
        }
    }

    #[test]
    fn full_exploration_equals_uniform_random() {
        // ε = 1.0 replaces any strategy's weights with the uniform ones, so
        // the sampled candidates (same seeded stream) must match UNIFORM
        // RANDOM exactly.
        let (data, model) = trained_toy();
        let mut explore = quick_config(StrategyKind::ClusteringTriangles);
        explore.exploration_epsilon = 1.0;
        let uniform = quick_config(StrategyKind::UniformRandom);
        let a = discover_facts(model.as_ref(), &data.train, &explore);
        let b = discover_facts(model.as_ref(), &data.train, &uniform);
        assert_eq!(a.facts, b.facts);
    }

    #[test]
    fn exploration_epsilon_keeps_invariants() {
        let (data, model) = trained_toy();
        let mut cfg = quick_config(StrategyKind::EntityFrequency);
        cfg.exploration_epsilon = 0.3;
        let report = discover_facts(model.as_ref(), &data.train, &cfg);
        for fact in &report.facts {
            assert!(!data.train.contains(&fact.triple));
            assert!(fact.rank <= 8.0);
        }
    }

    #[test]
    fn consolidated_pools_reach_beyond_relation_sides() {
        let (data, model) = trained_toy();
        let treats = data.vocab.relation("treats").unwrap();
        let mut cfg = quick_config(StrategyKind::UniformRandom);
        cfg.relations = Some(vec![treats]);
        cfg.consolidate_sides = true;
        cfg.top_n = usize::MAX >> 1; // keep all candidates as facts
        cfg.max_candidates = 200;
        let report = discover_facts(model.as_ref(), &data.train, &cfg);
        // With global pools, some generated subjects must fall outside the
        // per-relation treats subject pool (e.g. proteins).
        let pool = &data.train.subject_index(treats).entities;
        assert!(
            report
                .facts
                .iter()
                .any(|f| pool.binary_search(&f.triple.subject).is_err()),
            "consolidated sampling never left the per-relation pool"
        );
    }

    #[test]
    fn rule_pruning_only_emits_rule_compliant_facts() {
        let (data, model) = trained_toy();
        let mut cfg = quick_config(StrategyKind::GraphDegree);
        cfg.prune_with_rules = true;
        cfg.top_n = usize::MAX >> 1;
        let report = discover_facts(model.as_ref(), &data.train, &cfg);
        let rules = crate::CandidateRules::learn(&data.train, 5);
        for fact in &report.facts {
            assert!(rules.admits(&data.train, &fact.triple));
        }
        // The toy graph has functional relations, so something gets pruned.
        let pruned: usize = report.per_relation.iter().map(|r| r.pruned).sum();
        assert!(pruned > 0, "expected the rules to prune something");
    }

    #[test]
    fn probability_threshold_tightens_the_output() {
        // Definition 2.1: P(t) > b. A high threshold must subset the
        // rank-only output; threshold 0 must match it exactly.
        let (data, model) = trained_toy();
        let calibration =
            kgfd_eval::Calibration::fit(model.as_ref(), data.train.triples(), &data.train, 3);
        let base = quick_config(StrategyKind::EntityFrequency);
        let rank_only = discover_facts(model.as_ref(), &data.train, &base);

        let mut zero = base.clone();
        zero.min_probability = Some((calibration, 0.0));
        let with_zero = discover_facts(model.as_ref(), &data.train, &zero);
        assert_eq!(rank_only.facts, with_zero.facts);

        let mut strict = base.clone();
        strict.min_probability = Some((calibration, 0.9));
        let with_strict = discover_facts(model.as_ref(), &data.train, &strict);
        assert!(with_strict.facts.len() <= rank_only.facts.len());
        for f in &with_strict.facts {
            assert!(calibration.probability(model.score(f.triple)) > 0.9);
            assert!(rank_only.facts.contains(f), "must be a subset");
        }
    }

    #[test]
    fn can_rediscover_held_out_facts() {
        // The toy graph's held-out treats facts are rule-derivable; at least
        // one strategy should surface one of them with a generous budget.
        let (data, model) = trained_toy();
        let treats = data.vocab.relation("treats").unwrap();
        let mut cfg = quick_config(StrategyKind::EntityFrequency);
        cfg.relations = Some(vec![treats]);
        cfg.max_candidates = 100;
        cfg.top_n = 16;
        let report = discover_facts(model.as_ref(), &data.train, &cfg);
        let held_out: Vec<Triple> = data.valid.iter().chain(&data.test).copied().collect();
        let hit = report.facts.iter().any(|f| held_out.contains(&f.triple));
        // This is a statistical property of a trained model; the toy graph
        // and seed are fixed, so the assertion is deterministic.
        assert!(
            hit,
            "expected a held-out treats fact among {:?}",
            report.facts
        );
    }
}
