//! Rule-based candidate pruning in the spirit of CHAI (paper §5.1, [6]):
//! cheap structural rules mined from the training graph that reject
//! candidates before the expensive ranking step. The paper's §6 names
//! "devising different pruning mechanisms" as an open direction; these are
//! the three rules that need no ontology:
//!
//! * **functional relations** — if every observed subject of `r` has exactly
//!   one object (birthplace-style), reject candidates whose subject already
//!   has an object for `r`;
//! * **inverse-functional relations** — symmetrically for objects;
//! * **self-loops** — reject `(e, r, e)` for relations never observed with a
//!   self-loop.

use kgfd_kg::{RelationId, Triple, TripleStore};
use std::collections::HashMap;

/// Structural pruning rules learned from a training graph.
#[derive(Debug, Clone)]
pub struct CandidateRules {
    functional: Vec<bool>,
    inverse_functional: Vec<bool>,
    self_loops_seen: Vec<bool>,
}

impl CandidateRules {
    /// Mines the rules. A relation counts as (inverse-)functional only when
    /// observed with at least `min_support` triples — low-support relations
    /// yield unreliable rules.
    pub fn learn(store: &TripleStore, min_support: usize) -> Self {
        let k = store.num_relations();
        let mut functional = vec![false; k];
        let mut inverse_functional = vec![false; k];
        let mut self_loops_seen = vec![false; k];
        for r in 0..k {
            let rid = RelationId(r as u32);
            let triples = store.triples_of_relation(rid);
            if triples.iter().any(|t| t.is_loop()) {
                self_loops_seen[r] = true;
            }
            if triples.len() < min_support {
                continue;
            }
            let mut objects_per_subject: HashMap<u32, usize> = HashMap::new();
            let mut subjects_per_object: HashMap<u32, usize> = HashMap::new();
            for t in triples {
                *objects_per_subject.entry(t.subject.0).or_default() += 1;
                *subjects_per_object.entry(t.object.0).or_default() += 1;
            }
            functional[r] = objects_per_subject.values().all(|&c| c == 1);
            inverse_functional[r] = subjects_per_object.values().all(|&c| c == 1);
        }
        CandidateRules {
            functional,
            inverse_functional,
            self_loops_seen,
        }
    }

    /// `true` if relation `r` was mined as functional.
    pub fn is_functional(&self, r: RelationId) -> bool {
        self.functional[r.index()]
    }

    /// `true` if relation `r` was mined as inverse-functional.
    pub fn is_inverse_functional(&self, r: RelationId) -> bool {
        self.inverse_functional[r.index()]
    }

    /// Whether candidate `t` (already known to be absent from the graph)
    /// survives the rules.
    pub fn admits(&self, store: &TripleStore, t: &Triple) -> bool {
        let r = t.relation.index();
        if t.is_loop() && !self.self_loops_seen[r] {
            return false;
        }
        if self.functional[r]
            && store
                .subject_index(t.relation)
                .entities
                .binary_search(&t.subject)
                .is_ok()
        {
            // Subject already has its one object for this relation.
            return false;
        }
        if self.inverse_functional[r]
            && store
                .object_index(t.relation)
                .entities
                .binary_search(&t.object)
                .is_ok()
        {
            return false;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// r0: functional (each subject → one object), no loops.
    /// r1: non-functional, has a self-loop.
    fn store() -> TripleStore {
        TripleStore::new(
            6,
            2,
            vec![
                Triple::new(0u32, 0u32, 1u32),
                Triple::new(2u32, 0u32, 3u32),
                Triple::new(4u32, 0u32, 5u32),
                Triple::new(0u32, 1u32, 1u32),
                Triple::new(0u32, 1u32, 2u32),
                Triple::new(3u32, 1u32, 3u32), // self-loop
            ],
        )
        .unwrap()
    }

    #[test]
    fn mines_functionality_with_support() {
        let rules = CandidateRules::learn(&store(), 2);
        assert!(rules.is_functional(RelationId(0)));
        assert!(
            !rules.is_functional(RelationId(1)),
            "subject 0 has 2 objects"
        );
        assert!(rules.is_inverse_functional(RelationId(0)));
    }

    #[test]
    fn min_support_disables_unreliable_rules() {
        let rules = CandidateRules::learn(&store(), 10);
        assert!(!rules.is_functional(RelationId(0)), "support 3 < 10");
    }

    #[test]
    fn functional_rule_rejects_second_object() {
        let s = store();
        let rules = CandidateRules::learn(&s, 2);
        // Subject 0 already has an r0 object → candidate rejected.
        assert!(!rules.admits(&s, &Triple::new(0u32, 0u32, 5u32)));
        // Object 5 already has its one r0 subject → inverse rule rejects.
        assert!(!rules.admits(&s, &Triple::new(1u32, 0u32, 5u32)));
        // Fresh subject and fresh object → admitted.
        assert!(rules.admits(&s, &Triple::new(1u32, 0u32, 0u32)));
    }

    #[test]
    fn self_loop_rule_follows_observation() {
        let s = store();
        let rules = CandidateRules::learn(&s, 2);
        assert!(
            !rules.admits(&s, &Triple::new(2u32, 0u32, 2u32)),
            "r0 never had loops"
        );
        assert!(
            rules.admits(&s, &Triple::new(5u32, 1u32, 5u32)),
            "r1 has an observed loop"
        );
    }
}
