//! `compute_weights()` of Algorithm 1: turning a strategy + a per-relation
//! entity pool into a normalized sampling distribution.
//!
//! The candidate pools are the entities observed on each side of the target
//! relation (AmpliGraph's default `consolidate_sides=False`). Side-aware
//! strategies weight the pool by its own occurrence counts; side-agnostic
//! ones restrict their global measure to the pool and renormalize. A pool
//! whose weights sum to zero (e.g. no member participates in any triangle)
//! falls back to uniform — sampling must remain well-defined.

use crate::{Measures, StrategyKind};
use kgfd_kg::{KgError, SideIndex};

/// Normalized sampling weights over `pool.entities` (parallel vector).
pub fn compute_weights(strategy: StrategyKind, measures: &Measures, pool: &SideIndex) -> Vec<f64> {
    let raw: Vec<f64> = match strategy {
        StrategyKind::UniformRandom => vec![1.0; pool.len()],
        // Eq. 2 normalizes counts by len(side); any positive scaling yields
        // the same distribution after normalization.
        StrategyKind::EntityFrequency => pool.counts.iter().map(|&c| c as f64).collect(),
        _ => pool.entities.iter().map(|&e| measures.value(e)).collect(),
    };
    normalize_or_uniform(raw)
}

/// Rejects weight vectors containing NaN or ±∞ with a typed
/// [`KgError::NonFiniteWeight`] naming the first offending entry.
///
/// The samplers' defensive fallback treats a non-finite *sum* as degenerate
/// and silently substitutes the uniform distribution — correct for the
/// all-zero pools the strategies legitimately produce, but for a NaN it
/// would discard the caller's weights without a trace. Validate at the
/// boundary instead and keep the fallback for the zero-sum case only.
pub fn validate_weights(weights: &[f64]) -> Result<(), KgError> {
    match weights.iter().position(|w| !w.is_finite()) {
        Some(index) => Err(KgError::NonFiniteWeight {
            index,
            value: weights[index],
        }),
        None => Ok(()),
    }
}

/// Normalizes non-negative weights to sum 1, replacing degenerate inputs
/// (zero-sum or non-finite) with the uniform distribution.
pub fn normalize_or_uniform(mut weights: Vec<f64>) -> Vec<f64> {
    if weights.is_empty() {
        return weights;
    }
    let sum: f64 = weights.iter().sum();
    if sum > 0.0 && sum.is_finite() {
        for w in &mut weights {
            *w /= sum;
        }
        weights
    } else {
        let u = 1.0 / weights.len() as f64;
        vec![u; weights.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgfd_kg::{EntityId, Triple, TripleStore};

    fn pool() -> SideIndex {
        SideIndex {
            entities: vec![EntityId(0), EntityId(1), EntityId(2)],
            counts: vec![3, 1, 4],
        }
    }

    #[test]
    fn uniform_weights_are_equal() {
        let w = compute_weights(StrategyKind::UniformRandom, &Measures::PoolLocal, &pool());
        assert_eq!(w, vec![1.0 / 3.0; 3]);
    }

    #[test]
    fn frequency_weights_follow_counts() {
        let w = compute_weights(StrategyKind::EntityFrequency, &Measures::PoolLocal, &pool());
        assert_eq!(w, vec![3.0 / 8.0, 1.0 / 8.0, 4.0 / 8.0]);
    }

    #[test]
    fn global_measures_restrict_to_pool() {
        let m = Measures::Global(vec![10.0, 0.0, 30.0, 999.0]);
        let w = compute_weights(StrategyKind::GraphDegree, &m, &pool());
        assert_eq!(w, vec![0.25, 0.0, 0.75], "entity 3 is outside the pool");
    }

    #[test]
    fn zero_sum_falls_back_to_uniform() {
        let m = Measures::Global(vec![0.0; 4]);
        let w = compute_weights(StrategyKind::ClusteringTriangles, &m, &pool());
        assert_eq!(w, vec![1.0 / 3.0; 3]);
    }

    #[test]
    fn empty_pool_yields_empty_weights() {
        let empty = SideIndex::default();
        let w = compute_weights(StrategyKind::UniformRandom, &Measures::PoolLocal, &empty);
        assert!(w.is_empty());
    }

    #[test]
    fn validate_weights_flags_the_first_non_finite_entry() {
        assert!(validate_weights(&[0.0, 1.0, 0.5]).is_ok());
        assert!(validate_weights(&[]).is_ok());
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            match validate_weights(&[1.0, bad, f64::NAN]) {
                Err(kgfd_kg::KgError::NonFiniteWeight { index, .. }) => assert_eq!(index, 1),
                other => panic!("expected NonFiniteWeight, got {other:?}"),
            }
        }
    }

    #[test]
    fn weights_always_sum_to_one_on_real_store() {
        let store = TripleStore::new(
            5,
            2,
            vec![
                Triple::new(0u32, 0u32, 1u32),
                Triple::new(1u32, 0u32, 2u32),
                Triple::new(2u32, 0u32, 0u32),
                Triple::new(3u32, 1u32, 4u32),
            ],
        )
        .unwrap();
        for kind in StrategyKind::ALL {
            let m = Measures::compute(kind, &store);
            for r in store.used_relations() {
                for side in kgfd_kg::Side::BOTH {
                    let w = compute_weights(kind, &m, store.side_index(r, side));
                    let sum: f64 = w.iter().sum();
                    assert!((sum - 1.0).abs() < 1e-9, "{kind}: sum {sum}");
                    assert!(w.iter().all(|&x| x >= 0.0));
                }
            }
        }
    }
}
