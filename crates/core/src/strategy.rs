//! The six sampling strategies of the paper (§3.1.2).

use serde::{Deserialize, Serialize};

/// Which entity-sampling strategy drives candidate generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StrategyKind {
    /// Equal probability for every entity in the pool (Eq. 1) — the baseline.
    UniformRandom,
    /// Probability ∝ per-side occurrence count (Eq. 2).
    EntityFrequency,
    /// Probability ∝ node degree, sides not distinguished (Eq. 3).
    GraphDegree,
    /// Probability ∝ local clustering coefficient (Eq. 5).
    ClusteringCoefficient,
    /// Probability ∝ local triangle count (Eq. 4).
    ClusteringTriangles,
    /// Probability ∝ square (C4) clustering coefficient (Eq. 6). Excluded
    /// from the paper's grid for cost (§4.3: one run took ~54 h); available
    /// here for the ablation bench.
    ClusteringSquares,
    /// Probability ∝ PageRank — a library extension following the paper's
    /// conclusion that popularity-correlated measures sample well (§4.2.4).
    PageRank,
}

impl StrategyKind {
    /// The paper's six strategies (§3.1.2).
    pub const ALL: [StrategyKind; 6] = [
        StrategyKind::UniformRandom,
        StrategyKind::EntityFrequency,
        StrategyKind::GraphDegree,
        StrategyKind::ClusteringCoefficient,
        StrategyKind::ClusteringTriangles,
        StrategyKind::ClusteringSquares,
    ];

    /// The paper's six plus the library-extension strategies.
    pub const WITH_EXTENSIONS: [StrategyKind; 7] = [
        StrategyKind::UniformRandom,
        StrategyKind::EntityFrequency,
        StrategyKind::GraphDegree,
        StrategyKind::ClusteringCoefficient,
        StrategyKind::ClusteringTriangles,
        StrategyKind::ClusteringSquares,
        StrategyKind::PageRank,
    ];

    /// The five strategies of the paper's comparative figures (2, 4, 6),
    /// in their x-axis order; CLUSTERING SQUARES is excluded (§4.3).
    pub const PAPER_GRID: [StrategyKind; 5] = [
        StrategyKind::UniformRandom,
        StrategyKind::EntityFrequency,
        StrategyKind::GraphDegree,
        StrategyKind::ClusteringCoefficient,
        StrategyKind::ClusteringTriangles,
    ];

    /// Full name as written in the paper.
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::UniformRandom => "UNIFORM RANDOM",
            StrategyKind::EntityFrequency => "ENTITY FREQUENCY",
            StrategyKind::GraphDegree => "GRAPH DEGREE",
            StrategyKind::ClusteringCoefficient => "CLUSTERING COEFFICIENT",
            StrategyKind::ClusteringTriangles => "CLUSTERING TRIANGLES",
            StrategyKind::ClusteringSquares => "CLUSTERING SQUARES",
            StrategyKind::PageRank => "PAGERANK (extension)",
        }
    }

    /// Two-letter abbreviation used on the paper's figure axes.
    pub fn abbrev(self) -> &'static str {
        match self {
            StrategyKind::UniformRandom => "UR",
            StrategyKind::EntityFrequency => "EF",
            StrategyKind::GraphDegree => "GD",
            StrategyKind::ClusteringCoefficient => "CC",
            StrategyKind::ClusteringTriangles => "CT",
            StrategyKind::ClusteringSquares => "CS",
            StrategyKind::PageRank => "PR",
        }
    }

    /// `true` for the strategies whose weights distinguish the subject and
    /// object sides of a relation (the paper notes UNIFORM RANDOM and ENTITY
    /// FREQUENCY weights "may not be equal" across sides, while GRAPH DEGREE
    /// and the clustering strategies are side-agnostic).
    pub fn is_side_aware(self) -> bool {
        matches!(
            self,
            StrategyKind::UniformRandom | StrategyKind::EntityFrequency
        )
    }
}

impl std::fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_excludes_squares() {
        assert_eq!(StrategyKind::PAPER_GRID.len(), 5);
        assert!(!StrategyKind::PAPER_GRID.contains(&StrategyKind::ClusteringSquares));
    }

    #[test]
    fn abbreviations_match_figure_axes() {
        let abbrevs: Vec<_> = StrategyKind::PAPER_GRID
            .iter()
            .map(|s| s.abbrev())
            .collect();
        assert_eq!(abbrevs, vec!["UR", "EF", "GD", "CC", "CT"]);
    }

    #[test]
    fn extensions_are_not_in_the_paper_lists() {
        assert!(!StrategyKind::ALL.contains(&StrategyKind::PageRank));
        assert!(!StrategyKind::PAPER_GRID.contains(&StrategyKind::PageRank));
        assert!(StrategyKind::WITH_EXTENSIONS.contains(&StrategyKind::PageRank));
    }

    #[test]
    fn side_awareness_follows_the_paper() {
        assert!(StrategyKind::UniformRandom.is_side_aware());
        assert!(StrategyKind::EntityFrequency.is_side_aware());
        assert!(!StrategyKind::GraphDegree.is_side_aware());
        assert!(!StrategyKind::ClusteringTriangles.is_side_aware());
    }
}
