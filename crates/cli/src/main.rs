//! `kgfd` binary entry point.

fn main() {
    let args = match kgfd_cli::Args::parse(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", kgfd_cli::USAGE);
            std::process::exit(2);
        }
    };
    match kgfd_cli::run(&args) {
        Ok(report) => println!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            // Distinct exit codes for persistence failures (corrupt file,
            // version skew, migration needed) — see `kgfd help`.
            std::process::exit(kgfd_cli::exit_code(e.as_ref()));
        }
    }
}
