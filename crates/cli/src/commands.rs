//! The `kgfd` subcommands. Each returns its report as a `String` so the
//! commands are directly testable; `main` only prints.

use crate::args::{ArgError, Args};
use fact_discovery::{try_discover_facts, DiscoveryConfig, StrategyKind};
use kgfd_datasets::{
    codexl_like, fb15k237_like, find_inverse_pairs, generate, mini, toy_biomedical, wn18rr_like,
    yago310_like,
};
use kgfd_embed::{
    checkpoint_paths, read_model_file, resume_latest, train, write_model_file, CheckpointPolicy,
    KgeModel, LossKind, ModelKind, OptimizerKind, ResumeReport, StopSignal, TrainConfig,
    TrainOutcome, TrainSession,
};
use kgfd_eval::{
    evaluate_per_relation, evaluate_ranking, train_with_early_stopping, EarlyStopping,
};
use kgfd_graph_stats::{
    connected_components, global_transitivity, local_triangle_counts, GraphSummary,
    UndirectedAdjacency,
};
use kgfd_kg::{
    read_triples_tsv, write_triples_tsv, Dataset, KgError, Triple, TripleStore, Vocabulary,
};
use std::error::Error;
use std::fs::File;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

type CmdResult = Result<String, Box<dyn Error>>;

/// Usage text printed by `kgfd help` and on bad invocations.
pub const USAGE: &str = "\
kgfd — fact discovery from knowledge graph embeddings

USAGE: kgfd <COMMAND> [OPTIONS]

COMMANDS:
  generate  --profile <fb15k237|wn18rr|yago310|codexl|toy> --out <DIR>
            [--scale <mini|standard>]
            write a synthetic dataset as train/valid/test TSV
  stats     --train <TSV>
            structural statistics of a graph (density, triangles, components)
  train     --train <TSV> --out <FILE>
            --model <transe|distmult|complex|rescal|hole|conve|rotate|simple|tucker>
            [--dim 32] [--epochs 30] [--lr 0.01] [--loss <margin|bce>]
            [--negatives 4] [--adversarial <TEMP>] [--seed 0]
            [--threads <N>] [--valid <TSV> --early-stop]
            [--checkpoint-every <N>] [--resume] [--deadline <SECS>]
            train an embedding model and save it; --threads splits each
            mini-batch across N workers (results are bit-identical for
            any N; defaults to KGFD_THREADS or the CPU count, capped at 8;
            requests beyond the process worker pool are clamped with a
            warning).
            --checkpoint-every N atomically writes a checksummed training
            checkpoint next to --out every N epochs; --resume restarts from
            the newest valid checkpoint (falling back past corrupt ones) and
            the completed run is bit-identical to an uninterrupted one;
            --deadline stops gracefully at the next epoch boundary after
            SECS seconds, saving a final checkpoint (exit code 6)
  eval      --train <TSV> --test <TSV> --model-file <FILE> [--valid <TSV>]
            [--per-relation] [--threads 4]
            filtered link-prediction metrics (MRR, Hits@k)
  discover  --train <TSV> --model-file <FILE> [--strategy <ur|ef|gd|cc|ct|cs|pr>]
            [--top-n 500] [--max-candidates 500] [--relation <LABEL>]
            [--explore <EPS>] [--consolidate] [--prune] [--seed 0]
            [--threads <N>] [--chunk-size 128] [--top-k <K>]
            [--heldout <TSV>] [--out <TSV>]
            discover missing facts (Algorithm 1 of the paper); --threads
            sets the candidate-ranking worker count; candidates stream
            through the scorer --chunk-size at a time (results are
            bit-identical for any chunk size), and --top-k keeps only the
            K best facts per relation in a bounded heap
  audit-inverse --train <TSV> [--threshold 0.8]
            detect inverse-relation test-leakage pairs
  fit       --train <TSV> [--name <NAME>] [--seed 0]
            infer a synthetic-generator profile from an existing graph (JSON)
  complete  --train <TSV> --model-file <FILE> --relation <LABEL>
            (--subject <LABEL> | --object <LABEL>) [--top 10]
            answer a link-prediction query: rank completions of one side
  serve     --train <TSV> (--model-file <FILE> | --models-dir <DIR>)
            [--addr 127.0.0.1:8080] [--workers 4] [--max-inflight 64]
            [--deadline-ms 10000] [--cache-entries 256] [--rank-threads 2]
            [--for-secs <SECS>]
            serve POST /v1/score, /v1/rank, /v1/discover (plus /healthz,
            /metrics, /v1/models, /v1/reload) over HTTP; models come from
            `kgfd train` files (named by file stem) and hot-reload on
            demand; requests beyond --max-inflight are shed with 429 +
            Retry-After, each request gets a --deadline-ms budget (typed
            408 on expiry), repeated queries hit an LRU response cache
            (bit-identical to the cold path), and SIGTERM drains
            gracefully: in-flight requests finish, new ones get 503
  help      this text

OBSERVABILITY (any command):
  --metrics-out <FILE>  write structured JSONL events (spans, metrics, and a
                        closing run manifest) to FILE
  --progress            human-readable progress lines on stderr (rate-limited)
  --quiet               suppress all stderr output (warnings included)
  --trace-out <FILE>    collect the hierarchical span tree and write it as
                        Chrome trace-event JSON (chrome://tracing, Perfetto)
  --flame-out <FILE>    write the span tree as collapsed-stack flamegraph
                        text (flamegraph.pl / inferno input)
  --serve-metrics <ADDR>  serve GET /metrics (Prometheus), /healthz, and
                        /trace on ADDR (e.g. 127.0.0.1:9464) for the
                        duration of the run

EXIT CODES:
  0 success            1 runtime error       2 usage error
  3 corrupt model file (bad magic, checksum mismatch, truncation)
  4 unsupported model format version
  5 model file needs migration (v1 TransE: retrain and re-save)
  6 training interrupted by --deadline; checkpoint saved, rerun with --resume
";

/// Maps an error returned by [`run`] to the `kgfd` process exit code.
///
/// Persistence failures get distinct codes (see the `EXIT CODES` section of
/// [`USAGE`]) so scripts and CI can tell "the model file is damaged" from
/// ordinary runtime errors; the error's source chain is walked so a wrapped
/// [`KgError`] still maps correctly.
pub fn exit_code(err: &(dyn Error + 'static)) -> i32 {
    let mut current: Option<&(dyn Error + 'static)> = Some(err);
    while let Some(e) = current {
        if e.downcast_ref::<Interrupted>().is_some() {
            return 6;
        }
        if let Some(kg) = e.downcast_ref::<KgError>() {
            return match kg {
                KgError::Corrupt(_) => 3,
                KgError::UnsupportedVersion { .. } => 4,
                KgError::Migration(_) => 5,
                _ => 1,
            };
        }
        current = e.source();
    }
    1
}

/// Training stopped cooperatively (the `--deadline` expired) before all
/// epochs ran. Not a failure — the final checkpoint is on disk and
/// `--resume` continues bit-identically — but the model at `--out` was NOT
/// (re)written, so the condition surfaces as exit code 6 rather than 0.
#[derive(Debug)]
pub struct Interrupted {
    /// Epochs completed before the stop was honoured.
    pub epochs_done: usize,
    /// Checkpoint holding the interrupted state, when one could be written.
    pub checkpoint: Option<PathBuf>,
}

impl std::fmt::Display for Interrupted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "training interrupted after {} epoch(s)",
            self.epochs_done
        )?;
        match &self.checkpoint {
            Some(path) => write!(
                f,
                "; checkpoint saved to {} — rerun with --resume to continue",
                path.display()
            ),
            None => write!(f, "; no checkpoint was written"),
        }
    }
}

impl Error for Interrupted {}

/// Installs the observer the `--metrics-out` / `--progress` / `--quiet`
/// flags ask for; the guard restores the previous observer when dropped.
fn install_observer(args: &Args) -> Result<kgfd_obs::ScopedObserver, Box<dyn Error>> {
    let stderr: Option<Arc<dyn kgfd_obs::Observer>> = if args.flag("quiet") {
        None
    } else if args.flag("progress") {
        Some(Arc::new(kgfd_obs::StderrProgress::new()))
    } else {
        Some(Arc::new(kgfd_obs::StderrProgress::warnings_only()))
    };
    let sink: Option<Arc<dyn kgfd_obs::Observer>> = match args.get("metrics-out") {
        Some(path) => Some(Arc::new(
            kgfd_obs::JsonlSink::create(path).map_err(|e| format!("cannot create {path}: {e}"))?,
        )),
        // A bare trailing `--metrics-out` parses as a flag; reject it rather
        // than silently dropping the sink.
        None if args.flag("metrics-out") => {
            return Err("--metrics-out needs a file argument".into())
        }
        None => None,
    };
    let observers: Vec<Arc<dyn kgfd_obs::Observer>> = stderr.into_iter().chain(sink).collect();
    let observer: Arc<dyn kgfd_obs::Observer> = match observers.len() {
        0 => Arc::new(kgfd_obs::NullObserver),
        1 => observers.into_iter().next().expect("one observer"),
        _ => Arc::new(kgfd_obs::Fanout::new(observers)),
    };
    Ok(kgfd_obs::scoped(observer))
}

/// An option that requires a value: `Some(value)` when given, `None` when
/// absent, an error when present as a bare trailing flag.
fn optional_value(args: &Args, key: &'static str) -> Result<Option<String>, Box<dyn Error>> {
    match args.get(key) {
        Some(v) => Ok(Some(v.to_string())),
        None if args.flag(key) => Err(format!("--{key} needs an argument").into()),
        None => Ok(None),
    }
}

/// What `--trace-out` / `--flame-out` asked for; exports happen in
/// [`finish_tracing`] after the command completes.
struct TraceFlags {
    trace_out: Option<String>,
    flame_out: Option<String>,
    enabled: bool,
}

/// Handles the tracing/serving flags: enables span collection when any of
/// them is present and binds the live metrics endpoint for
/// `--serve-metrics`.
fn tracing_setup(
    args: &Args,
) -> Result<(TraceFlags, Option<kgfd_obs::MetricsServer>), Box<dyn Error>> {
    let trace_out = optional_value(args, "trace-out")?;
    let flame_out = optional_value(args, "flame-out")?;
    let serve = optional_value(args, "serve-metrics")?;
    let enabled = trace_out.is_some() || flame_out.is_some() || serve.is_some();
    if enabled {
        kgfd_obs::enable_tracing();
    }
    let server = match serve {
        Some(addr) => {
            let server = kgfd_obs::MetricsServer::start(&addr)
                .map_err(|e| format!("cannot serve metrics on {addr}: {e}"))?;
            // Announce the bound address so `--serve-metrics 127.0.0.1:0`
            // (ephemeral port) is usable by whoever wants to scrape us.
            if !args.flag("quiet") {
                eprintln!("serving metrics on http://{}", server.local_addr());
            }
            Some(server)
        }
        None => None,
    };
    Ok((
        TraceFlags {
            trace_out,
            flame_out,
            enabled,
        },
        server,
    ))
}

/// Shuts the metrics endpoint down, drains the collected span tree, and
/// writes the requested exports. Runs after the command finishes (success
/// or failure) so a failing run still leaves its partial trace behind.
fn finish_tracing(
    flags: &TraceFlags,
    server: Option<kgfd_obs::MetricsServer>,
) -> Result<(), Box<dyn Error>> {
    if let Some(server) = server {
        server.shutdown();
    }
    if !flags.enabled {
        return Ok(());
    }
    // Drain unconditionally: it frees the collected nodes and restores the
    // disabled-by-default state for in-process callers (tests, harness).
    let records = kgfd_obs::collector().drain();
    kgfd_obs::disable_tracing();
    if flags.trace_out.is_none() && flags.flame_out.is_none() {
        return Ok(());
    }
    let tree = kgfd_obs::TraceTree::build(records);
    if let Some(path) = &flags.trace_out {
        std::fs::write(path, kgfd_obs::chrome_trace(&tree))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    if let Some(path) = &flags.flame_out {
        std::fs::write(path, kgfd_obs::flamegraph_collapsed(&tree))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    Ok(())
}

/// The dataset shape of a training graph, for run manifests.
fn dataset_shape(store: &TripleStore) -> kgfd_obs::DatasetShape {
    kgfd_obs::DatasetShape {
        entities: store.num_entities() as u64,
        relations: store.num_relations() as u64,
        triples: store.len() as u64,
    }
}

/// Dispatches a parsed command line.
pub fn run(args: &Args) -> CmdResult {
    let _observer = install_observer(args)?;
    // Set the phase before `tracing_setup` can bind (and announce) the
    // `--serve-metrics` endpoint: a scraper that hits /healthz the moment
    // the address is printed must already see this command's phase, not a
    // leftover of whatever ran before.
    if let Some(cmd) = args.command.as_deref() {
        kgfd_obs::set_phase(cmd);
    }
    let (trace_flags, server) = tracing_setup(args)?;
    let root_span = args.command.as_deref().map(|cmd| {
        // One trace-only root per invocation: everything the command opens
        // (discover.total, training epochs, ...) nests under it, so trace
        // exports have a single root whose duration is the run itself.
        kgfd_obs::Span::with_fields_traced(
            "cli.command",
            vec![kgfd_obs::Field::new("command", cmd)],
        )
    });
    let result = dispatch(args);
    drop(root_span);
    finish_tracing(&trace_flags, server)?;
    result
}

fn dispatch(args: &Args) -> CmdResult {
    match args.command.as_deref() {
        Some("generate") => cmd_generate(args),
        Some("stats") => cmd_stats(args),
        Some("train") => cmd_train(args),
        Some("eval") => cmd_eval(args),
        Some("discover") => cmd_discover(args),
        Some("audit-inverse") => cmd_audit_inverse(args),
        Some("fit") => cmd_fit(args),
        Some("complete") => cmd_complete(args),
        Some("serve") => cmd_serve(args),
        Some("help") | None => Ok(USAGE.to_string()),
        Some(other) => Err(format!("unknown command {other:?}\n\n{USAGE}").into()),
    }
}

fn load_graph(path: &str) -> Result<(Vocabulary, Vec<Triple>), Box<dyn Error>> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let mut vocab = Vocabulary::new();
    let triples = read_triples_tsv(file, &mut vocab)?;
    Ok((vocab, triples))
}

/// Reads a TSV whose labels must already exist in `vocab` (held-out splits
/// against a training vocabulary).
fn load_with_vocab(path: &str, vocab: &Vocabulary) -> Result<Vec<Triple>, Box<dyn Error>> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let mut scratch = Vocabulary::new();
    let raw = read_triples_tsv(file, &mut scratch)?;
    raw.into_iter()
        .map(|t| {
            let lookup_e = |id| -> Result<_, Box<dyn Error>> {
                let label = scratch.entity_label(id).expect("interned");
                vocab
                    .entity(label)
                    .ok_or_else(|| format!("{path}: entity {label:?} not in training graph").into())
            };
            let s = lookup_e(t.subject)?;
            let o = lookup_e(t.object)?;
            let rl = scratch.relation_label(t.relation).expect("interned");
            let r = vocab
                .relation(rl)
                .ok_or_else(|| format!("{path}: relation {rl:?} not in training graph"))?;
            Ok(Triple {
                subject: s,
                relation: r,
                object: o,
            })
        })
        .collect()
}

fn store_of(vocab: &Vocabulary, triples: Vec<Triple>) -> Result<TripleStore, KgError> {
    TripleStore::new(vocab.num_entities(), vocab.num_relations(), triples)
}

fn parse_model(name: &str) -> Result<ModelKind, Box<dyn Error>> {
    ModelKind::from_name(name)
        .ok_or_else(|| format!("unknown model {name:?}; see `kgfd help`").into())
}

fn parse_strategy(name: &str) -> Result<StrategyKind, Box<dyn Error>> {
    let s = match name.to_ascii_lowercase().as_str() {
        "ur" | "uniform" | "random_uniform" => StrategyKind::UniformRandom,
        "ef" | "frequency" | "entity_frequency" => StrategyKind::EntityFrequency,
        "gd" | "degree" | "graph_degree" => StrategyKind::GraphDegree,
        "cc" | "coefficient" | "cluster_coefficient" => StrategyKind::ClusteringCoefficient,
        "ct" | "triangles" | "cluster_triangles" => StrategyKind::ClusteringTriangles,
        "cs" | "squares" | "cluster_squares" => StrategyKind::ClusteringSquares,
        "pr" | "pagerank" => StrategyKind::PageRank,
        _ => return Err(format!("unknown strategy {name:?}; see `kgfd help`").into()),
    };
    Ok(s)
}

fn cmd_generate(args: &Args) -> CmdResult {
    let out = Path::new(args.required("out")?).to_path_buf();
    let profile_name = args.required("profile")?;
    let scale = args.get("scale").unwrap_or("standard");
    let dataset: Dataset = if profile_name == "toy" {
        toy_biomedical()
    } else {
        let base = match profile_name {
            "fb15k237" => fb15k237_like(),
            "wn18rr" => wn18rr_like(),
            "yago310" => yago310_like(),
            "codexl" => codexl_like(),
            other => return Err(format!("unknown profile {other:?}").into()),
        };
        let profile = match scale {
            "standard" => base,
            "mini" => mini(&base),
            other => return Err(format!("unknown scale {other:?}").into()),
        };
        generate(&profile)?
    };
    std::fs::create_dir_all(&out)?;
    for (name, triples) in [
        ("train.tsv", dataset.train.triples()),
        ("valid.tsv", &dataset.valid[..]),
        ("test.tsv", &dataset.test[..]),
    ] {
        let file = File::create(out.join(name))?;
        write_triples_tsv(file, triples, &dataset.vocab)?;
    }
    let m = dataset.metadata();
    Ok(format!(
        "wrote {} to {}\n  train {} / valid {} / test {} triples, {} entities, {} relations",
        m.name,
        out.display(),
        m.training,
        m.validation,
        m.test,
        m.entities,
        m.relations
    ))
}

fn cmd_stats(args: &Args) -> CmdResult {
    let (vocab, triples) = load_graph(args.required("train")?)?;
    let store = store_of(&vocab, triples)?;
    let summary = GraphSummary::compute(&store);
    let adj = UndirectedAdjacency::from_store(&store);
    let triangles = local_triangle_counts(&adj);
    let transitivity = global_transitivity(&adj, &triangles);
    let components = connected_components(&adj);
    if args.flag("json") {
        return Ok(serde_json::to_string_pretty(&serde_json::json!({
            "summary": summary,
            "transitivity": transitivity,
            "components": components,
        }))?);
    }
    let cards = kgfd_kg::relation_cardinalities(&store);
    let count_of = |c: kgfd_kg::Cardinality| cards.iter().filter(|x| x.category == c).count();
    Ok(format!(
        "entities            {}\n\
         relations           {}\n\
         triples             {}\n\
         simple edges        {}\n\
         triples/entity      {:.2}\n\
         avg clustering      {:.4}\n\
         transitivity        {:.4}\n\
         triangles           {}\n\
         mean degree         {:.2} (max {})\n\
         components          {} (largest {}, isolated {})\n\
         relation categories 1-1: {}, 1-N: {}, N-1: {}, N-M: {}\n\
         complement size     {}",
        summary.num_entities,
        summary.num_relations,
        summary.num_triples,
        summary.simple_edges,
        summary.avg_triples_per_entity,
        summary.avg_clustering,
        transitivity,
        summary.total_triangles,
        summary.mean_degree,
        summary.max_degree,
        components.count,
        components.largest,
        components.isolated,
        count_of(kgfd_kg::Cardinality::OneToOne),
        count_of(kgfd_kg::Cardinality::OneToMany),
        count_of(kgfd_kg::Cardinality::ManyToOne),
        count_of(kgfd_kg::Cardinality::ManyToMany),
        store.complement_size(),
    ))
}

/// Resolves a user-requested `--threads` value through the pool's central
/// policy: zero is rejected, requests beyond the pool's width are clamped
/// (with a warning event). One helper so train/eval/discover, the harness,
/// and `repro` all agree on the rule.
fn resolve_threads_arg(requested: usize) -> Result<usize, String> {
    kgfd_pool::resolve_threads(requested).map_err(|e| format!("--threads: {e}"))
}

/// Renders a loss value for reports: `NaN` (a zero-epoch run) becomes
/// `"n/a"` instead of leaking NaN into text or JSON output.
fn render_loss(loss: f64) -> String {
    if loss.is_finite() {
        format!("{loss:.4}")
    } else {
        "n/a".to_string()
    }
}

fn cmd_train(args: &Args) -> CmdResult {
    let start = Instant::now();
    let (vocab, triples) = load_graph(args.required("train")?)?;
    let store = store_of(&vocab, triples)?;
    let kind = parse_model(args.required("model")?)?;
    let loss = match args.get("loss").unwrap_or("bce") {
        "margin" => LossKind::MarginRanking { margin: 1.0 },
        "bce" => LossKind::BinaryCrossEntropy,
        other => return Err(format!("unknown loss {other:?} (margin|bce)").into()),
    };
    let config = TrainConfig {
        dim: args.parse_or("dim", 32, "integer")?,
        epochs: args.parse_or("epochs", 30, "integer")?,
        batch_size: args.parse_or("batch-size", 256, "integer")?,
        negatives: args.parse_or("negatives", 4, "integer")?,
        loss,
        optimizer: OptimizerKind::Adam {
            lr: args.parse_or("lr", 0.01, "number")?,
        },
        filter_negatives: true,
        normalize_entities: kind == ModelKind::TransE,
        adversarial_temperature: match args.get("adversarial") {
            Some(raw) => Some(raw.parse().map_err(|_| ArgError::Invalid {
                key: "adversarial".into(),
                value: raw.into(),
                expected: "number",
            })?),
            None => None,
        },
        seed: args.parse_or("seed", 0, "integer")?,
        threads: resolve_threads_arg(args.parse_or(
            "threads",
            TrainConfig::default_threads(),
            "integer",
        )?)?,
    };
    config
        .validate()
        .map_err(|e| format!("invalid training configuration: {e}"))?;

    let checkpoint_every: usize = args.parse_or("checkpoint-every", 0, "integer")?;
    let resume = args.flag("resume");
    let deadline_s: Option<f64> = match optional_value(args, "deadline")? {
        Some(raw) => Some(raw.parse().map_err(|_| ArgError::Invalid {
            key: "deadline".into(),
            value: raw,
            expected: "number of seconds",
        })?),
        None => None,
    };
    let checkpointing = checkpoint_every > 0 || resume || deadline_s.is_some();
    if checkpointing && args.flag("early-stop") {
        return Err(
            "--early-stop cannot be combined with --checkpoint-every/--resume/--deadline \
             (early stopping keeps its best-so-far parameters in memory, which a \
             checkpoint cannot capture yet)"
                .into(),
        );
    }
    let out = args.required("out")?;

    let mut resumed_from: Option<String> = None;
    let (model, summary, final_loss): (Box<dyn KgeModel>, String, Option<f64>) =
        if args.flag("early-stop") {
            let valid_path = args
                .get("valid")
                .ok_or_else(|| ArgError::Missing("valid".into()))?;
            let valid = load_with_vocab(valid_path, &vocab)?;
            let (model, stats) =
                train_with_early_stopping(kind, &store, &valid, &config, EarlyStopping::default());
            (
                model,
                format!(
                    "early stopping: best valid MRR {:.4} after {} epochs",
                    stats.best_mrr, stats.epochs_trained
                ),
                None,
            )
        } else if checkpointing {
            let (mut session, report) = if resume {
                resume_latest(kind, &store, &config, Path::new(out))?
            } else {
                (
                    TrainSession::new(kind, &store, &config)
                        .map_err(|e| format!("cannot start training: {e}"))?,
                    ResumeReport::default(),
                )
            };
            resumed_from = report
                .resumed_from
                .as_ref()
                .map(|p| p.display().to_string());
            let policy = CheckpointPolicy::new(PathBuf::from(out), checkpoint_every);
            let stop = deadline_s.map(|s| StopSignal::with_deadline(Duration::from_secs_f64(s)));
            let outcome = session.run(Some(&policy), stop.as_ref())?;
            if let TrainOutcome::Interrupted {
                epochs_done,
                checkpoint,
            } = outcome
            {
                emit_train_manifest(
                    kind,
                    &config,
                    &store,
                    start,
                    None,
                    resumed_from,
                    checkpoint_every,
                    Some(epochs_done),
                );
                return Err(Interrupted {
                    epochs_done,
                    checkpoint,
                }
                .into());
            }
            let (model, stats) = session.into_model();
            let loss = stats.final_loss();
            (
                model,
                format!(
                    "final training loss {} over {} epochs",
                    render_loss(loss),
                    config.epochs
                ),
                Some(loss),
            )
        } else {
            let (model, stats) = train(kind, &store, &config);
            let loss = stats.final_loss();
            (
                model,
                format!(
                    "final training loss {} over {} epochs",
                    render_loss(loss),
                    config.epochs
                ),
                Some(loss),
            )
        };

    // Atomic temp-file + rename: an interrupted `kgfd train` can never
    // leave a partial (and thus unloadable) model file at --out.
    write_model_file(out, model.as_ref())?;
    if checkpointing {
        // The run completed and the model is durable — the intermediate
        // checkpoints have served their purpose.
        for (_, path) in checkpoint_paths(Path::new(out)) {
            let _ = std::fs::remove_file(path);
        }
    }

    emit_train_manifest(
        kind,
        &config,
        &store,
        start,
        final_loss,
        resumed_from,
        checkpoint_every,
        None,
    );

    Ok(format!(
        "trained {kind} (dim {}, {} parameters) on {} triples\n{summary}\nsaved to {out}",
        config.dim,
        model.params().num_parameters(),
        store.len(),
    ))
}

/// Emits the `train` RunManifest — shared by the completed and interrupted
/// paths so an interrupted run still leaves a machine-readable record (with
/// `epochs_done` showing where it stopped).
#[allow(clippy::too_many_arguments)]
fn emit_train_manifest(
    kind: ModelKind,
    config: &TrainConfig,
    store: &TripleStore,
    start: Instant,
    final_loss: Option<f64>,
    resumed_from: Option<String>,
    checkpoint_every: usize,
    interrupted_at: Option<usize>,
) {
    let mut manifest = kgfd_obs::RunManifest::new("train");
    manifest.model = kind.to_string();
    manifest.seed = config.seed;
    manifest.dataset = dataset_shape(store);
    manifest.wall_clock_s = start.elapsed().as_secs_f64();
    manifest.resumed_from = resumed_from;
    manifest = manifest
        .with_config("dim", config.dim)
        .with_config("epochs", config.epochs)
        .with_config("batch_size", config.batch_size)
        .with_config("negatives", config.negatives)
        .with_config("threads", config.threads);
    if checkpoint_every > 0 {
        manifest = manifest.with_config("checkpoint_every", checkpoint_every);
    }
    if let Some(epochs_done) = interrupted_at {
        manifest = manifest
            .with_config("interrupted", true)
            .with_config("epochs_done", epochs_done);
    }
    if let Some(loss) = final_loss {
        // NaN (zero-epoch run) is reported as text, never NaN-in-JSON.
        manifest = if loss.is_finite() {
            manifest.with_config("final_loss", loss)
        } else {
            manifest.with_config("final_loss", render_loss(loss))
        };
    }
    manifest.emit();
}

fn load_model_file(path: &str) -> Result<Box<dyn KgeModel>, Box<dyn Error>> {
    // Keep the typed `KgError` intact (rather than flattening to a string)
    // so `exit_code` can map corruption / version skew / migration failures
    // to their distinct process exit codes.
    Ok(read_model_file(path)?)
}

fn check_model_matches(model: &dyn KgeModel, store: &TripleStore) -> Result<(), Box<dyn Error>> {
    if model.num_entities() != store.num_entities()
        || model.num_relations() != store.num_relations()
    {
        return Err(format!(
            "model shape ({} entities, {} relations) does not match the graph \
             ({} entities, {} relations) — was it trained on this --train file?",
            model.num_entities(),
            model.num_relations(),
            store.num_entities(),
            store.num_relations()
        )
        .into());
    }
    Ok(())
}

fn cmd_eval(args: &Args) -> CmdResult {
    let start = Instant::now();
    let (vocab, triples) = load_graph(args.required("train")?)?;
    let store = store_of(&vocab, triples)?;
    let test = load_with_vocab(args.required("test")?, &vocab)?;
    let valid = match args.get("valid") {
        Some(path) => load_with_vocab(path, &vocab)?,
        None => Vec::new(),
    };
    let model = load_model_file(args.required("model-file")?)?;
    check_model_matches(model.as_ref(), &store)?;

    let threads = resolve_threads_arg(args.parse_or("threads", 4, "integer")?)?;
    let known = kgfd_kg::KnownTriples::from_slices([store.triples(), &valid[..], &test[..]]);
    let summary = evaluate_ranking(model.as_ref(), &test, Some(&known), threads);
    let mut out = format!(
        "filtered link prediction on {} test triples ({}):\n{summary}",
        test.len(),
        model.kind(),
    );
    if args.flag("per-relation") {
        out.push_str("\nper relation:\n");
        for p in evaluate_per_relation(model.as_ref(), &test, Some(&known), threads) {
            out.push_str(&format!(
                "  {:<24} {}\n",
                vocab.relation_label(p.relation).unwrap_or("?"),
                p.summary
            ));
        }
    }

    let mut manifest = kgfd_obs::RunManifest::new("eval");
    manifest.model = model.kind().to_string();
    manifest.dataset = dataset_shape(&store);
    manifest.wall_clock_s = start.elapsed().as_secs_f64();
    manifest
        .with_config("test_triples", test.len())
        .with_config("mrr", summary.mrr)
        .with_config(
            "eval.rank.dedup_ratio",
            kgfd_obs::gauge("eval.rank.dedup_ratio").get(),
        )
        .emit();

    Ok(out)
}

fn cmd_fit(args: &Args) -> CmdResult {
    let (vocab, triples) = load_graph(args.required("train")?)?;
    let store = store_of(&vocab, triples)?;
    let name = args.get("name").unwrap_or("fitted");
    let seed = args.parse_or("seed", 0, "integer")?;
    let profile = kgfd_datasets::fit_profile(name, &store, seed);
    Ok(serde_json::to_string_pretty(&profile)?)
}

fn cmd_discover(args: &Args) -> CmdResult {
    let start = Instant::now();
    let (vocab, triples) = load_graph(args.required("train")?)?;
    let store = store_of(&vocab, triples)?;
    let model = load_model_file(args.required("model-file")?)?;
    check_model_matches(model.as_ref(), &store)?;

    let relations = match args.get("relation") {
        Some(label) => Some(vec![vocab
            .relation(label)
            .ok_or_else(|| format!("relation {label:?} not in the graph"))?]),
        None => None,
    };
    let top_k = match args.get("top-k") {
        Some(v) => Some(
            v.parse::<usize>()
                .map_err(|_| format!("--top-k expects an integer, got {v:?}"))?,
        ),
        None => None,
    };
    let config = DiscoveryConfig {
        strategy: parse_strategy(args.get("strategy").unwrap_or("ef"))?,
        top_n: args.parse_or("top-n", 500, "integer")?,
        max_candidates: args.parse_or("max-candidates", 500, "integer")?,
        relations,
        exploration_epsilon: args.parse_or("explore", 0.0, "number")?,
        consolidate_sides: args.flag("consolidate"),
        prune_with_rules: args.flag("prune"),
        seed: args.parse_or("seed", 0, "integer")?,
        threads: resolve_threads_arg(args.parse_or(
            "threads",
            DiscoveryConfig::default().threads,
            "integer",
        )?)?,
        chunk_size: args.parse_or(
            "chunk-size",
            DiscoveryConfig::default().chunk_size,
            "integer",
        )?,
        top_k,
        ..DiscoveryConfig::default()
    };
    if config.chunk_size == 0 {
        return Err("--chunk-size must be at least 1".into());
    }
    let report = try_discover_facts(model.as_ref(), &store, &config)?;

    let mut facts = report.facts.clone();
    facts.sort_by(|a, b| a.rank.total_cmp(&b.rank));
    let mut lines = String::new();
    for f in &facts {
        lines.push_str(&format!(
            "{}\t{}\t{}\t{:.1}\n",
            vocab.entity_label(f.triple.subject).unwrap_or("?"),
            vocab.relation_label(f.triple.relation).unwrap_or("?"),
            vocab.entity_label(f.triple.object).unwrap_or("?"),
            f.rank
        ));
    }
    if let Some(out) = args.get("out") {
        std::fs::write(out, &lines)?;
    }
    let mut result = format!(
        "{}: discovered {} facts from {} candidates in {:.2?} \
         (MRR {:.4}, {:.0} facts/hour)\n",
        config.strategy,
        report.facts.len(),
        report.candidates_generated(),
        report.total,
        report.mrr(),
        report.facts_per_hour(),
    );
    let pruned: usize = report.per_relation.iter().map(|r| r.pruned).sum();
    if pruned > 0 {
        result.push_str(&format!("{pruned} candidates pruned by rules\n"));
    }
    if let Some(heldout_path) = args.get("heldout") {
        let held_out = load_with_vocab(heldout_path, &vocab)?;
        let fact_triples: Vec<kgfd_kg::Triple> = report.facts.iter().map(|f| f.triple).collect();
        let h = kgfd_eval::score_against_held_out(&fact_triples, &held_out, &store);
        result.push_str(&format!(
            "held-out check: {}/{} truths rediscovered (recall {:.3}, \
             reachable-recall {:.3}, precision lower bound {:.3})\n",
            h.hits, h.held_out, h.recall, h.reachable_recall, h.precision_lower_bound
        ));
    }
    match args.get("out") {
        Some(out) => result.push_str(&format!("facts written to {out}")),
        None => {
            result.push_str("subject\trelation\tobject\trank\n");
            result.push_str(&lines);
        }
    }

    let mut manifest = kgfd_obs::RunManifest::new("discover");
    manifest.strategy = config.strategy.to_string();
    manifest.model = model.kind().to_string();
    manifest.seed = config.seed;
    manifest.dataset = dataset_shape(&store);
    manifest.wall_clock_s = start.elapsed().as_secs_f64();
    manifest
        .with_config("top_n", config.top_n)
        .with_config("max_candidates", config.max_candidates)
        .with_config("exploration_epsilon", config.exploration_epsilon)
        .with_config("consolidate_sides", config.consolidate_sides)
        .with_config("prune_with_rules", config.prune_with_rules)
        .with_config("chunk_size", config.chunk_size)
        .with_config("top_k", config.top_k.map(|k| k as u64).unwrap_or(0))
        .with_config("facts", report.facts.len())
        .with_config(
            "eval.rank.dedup_ratio",
            kgfd_obs::gauge("eval.rank.dedup_ratio").get(),
        )
        .with_config(
            "discover.stream.peak_buffer",
            kgfd_obs::gauge("discover.stream.peak_buffer").get(),
        )
        .with_config(
            "discover.stream.chunks",
            kgfd_obs::counter("discover.stream.chunks").get(),
        )
        .with_config(
            "discover.cache.measures_hit",
            kgfd_obs::counter("discover.cache.measures_hit").get(),
        )
        .with_config(
            "discover.cache.measures_miss",
            kgfd_obs::counter("discover.cache.measures_miss").get(),
        )
        .emit();

    Ok(result)
}

fn cmd_complete(args: &Args) -> CmdResult {
    let (vocab, triples) = load_graph(args.required("train")?)?;
    let store = store_of(&vocab, triples)?;
    let model = load_model_file(args.required("model-file")?)?;
    check_model_matches(model.as_ref(), &store)?;

    let relation_label = args.required("relation")?;
    let r = vocab
        .relation(relation_label)
        .ok_or_else(|| format!("relation {relation_label:?} not in the graph"))?;
    let top = args.parse_or("top", 10usize, "integer")?;

    let mut scores = vec![0.0f32; store.num_entities()];
    let (query, fixed_side) = match (args.get("subject"), args.get("object")) {
        (Some(s), None) => {
            let sid = vocab
                .entity(s)
                .ok_or_else(|| format!("entity {s:?} not in the graph"))?;
            model.score_objects(sid, r, &mut scores);
            (format!("({s}, {relation_label}, ?)"), sid)
        }
        (None, Some(o)) => {
            let oid = vocab
                .entity(o)
                .ok_or_else(|| format!("entity {o:?} not in the graph"))?;
            model.score_subjects(r, oid, &mut scores);
            (format!("(?, {relation_label}, {o})"), oid)
        }
        _ => return Err("provide exactly one of --subject or --object".into()),
    };
    let _ = fixed_side;

    let mut ranked: Vec<(usize, f32)> = scores.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    let mut out = format!("top {top} completions of {query} ({}):\n", model.kind());
    for (e, score) in ranked.into_iter().take(top) {
        out.push_str(&format!(
            "  {:<24} {score:.4}\n",
            vocab
                .entity_label(kgfd_kg::EntityId(e as u32))
                .unwrap_or("?")
        ));
    }
    Ok(out)
}

/// `kgfd serve` — the online serving mode: load models, answer HTTP
/// queries until SIGTERM (or `--for-secs` expires), drain, report.
fn cmd_serve(args: &Args) -> CmdResult {
    let start = Instant::now();
    let (vocab, triples) = load_graph(args.required("train")?)?;
    let store = store_of(&vocab, triples)?;
    let shape = dataset_shape(&store);
    let registry = Arc::new(kgfd_serve::ModelRegistry::new(
        kgfd_serve::GraphContext::new(vocab, store),
    ));

    // Models: a single --model-file (named by its stem) and/or every
    // regular file in --models-dir. Loads are validated against the graph.
    if let Some(path) = args.get("model-file") {
        let name = Path::new(path)
            .file_stem()
            .and_then(|s| s.to_str())
            .ok_or_else(|| format!("cannot derive a model name from {path:?}"))?
            .to_string();
        registry.load(&name, path)?;
    }
    if let Some(dir) = args.get("models-dir") {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
            .map_err(|e| format!("cannot read {dir}: {e}"))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_file())
            .collect();
        entries.sort(); // deterministic load order (and generation numbers)
        for path in entries {
            let Some(name) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            registry.load(name, &path)?;
        }
    }
    if registry.is_empty() {
        return Err("no models to serve: provide --model-file and/or --models-dir".into());
    }

    let config = kgfd_serve::ServeConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:8080").to_string(),
        workers: args.parse_or("workers", 4usize, "integer")?.max(1),
        max_inflight: args.parse_or("max-inflight", 64usize, "integer")?.max(1),
        deadline_ms: args.parse_or("deadline-ms", 10_000u64, "integer")?,
        cache_entries: args.parse_or("cache-entries", 256usize, "integer")?,
        cache_seed: args.parse_or("cache-seed", 0u64, "integer")?,
        rank_threads: args.parse_or("rank-threads", 2usize, "integer")?.max(1),
        enable_test_endpoints: args.flag("test-endpoints"),
        ..kgfd_serve::ServeConfig::default()
    };
    let for_secs = match args.get("for-secs") {
        Some(v) => Some(
            v.parse::<u64>()
                .map_err(|_| format!("--for-secs expects an integer, got {v:?}"))?,
        ),
        None => None,
    };

    kgfd_serve::install_termination_handler();
    let server = kgfd_serve::Server::start(config.clone(), Arc::clone(&registry))
        .map_err(|e| format!("cannot serve on {}: {e}", config.addr))?;
    // Announce the bound address (ephemeral ports become usable) in the
    // same shape `--serve-metrics` uses.
    if !args.flag("quiet") {
        eprintln!("serving kgfd on http://{}", server.local_addr());
    }

    loop {
        if kgfd_serve::termination_requested() {
            break;
        }
        if let Some(secs) = for_secs {
            if start.elapsed() >= Duration::from_secs(secs) {
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    let stats = server.shutdown();

    let mut manifest = kgfd_obs::RunManifest::new("serve");
    manifest.dataset = shape;
    manifest.wall_clock_s = start.elapsed().as_secs_f64();
    manifest
        .with_config("serve.workers", config.workers)
        .with_config("serve.max_inflight", config.max_inflight)
        .with_config("serve.deadline_ms", config.deadline_ms)
        .with_config("serve.cache_entries", config.cache_entries)
        .with_config("serve.rank_threads", config.rank_threads)
        .with_config("serve.models", registry.len())
        .with_config("serve.requests", stats.requests)
        .with_config("serve.responses_2xx", stats.responses_2xx)
        .with_config("serve.responses_4xx", stats.responses_4xx)
        .with_config("serve.responses_5xx", stats.responses_5xx)
        .with_config("serve.shed", stats.shed)
        .with_config("serve.deadline_expired", stats.deadline_expired)
        .with_config("serve.cache_hits", stats.cache_hits)
        .with_config("serve.cache_misses", stats.cache_misses)
        .with_config("serve.worker_panics", stats.worker_panics)
        .with_config("serve.workers_spawned", stats.workers_spawned)
        .with_config("serve.workers_joined", stats.workers_joined)
        .emit();

    Ok(format!(
        "served {} requests in {:.2?} ({} 2xx, {} 4xx, {} 5xx; {} shed, {} deadline-expired)\n\
         cache: {} hits, {} misses\n\
         drained cleanly: {}/{} workers joined, {} handler panics",
        stats.requests,
        start.elapsed(),
        stats.responses_2xx,
        stats.responses_4xx,
        stats.responses_5xx,
        stats.shed,
        stats.deadline_expired,
        stats.cache_hits,
        stats.cache_misses,
        stats.workers_joined,
        stats.workers_spawned,
        stats.worker_panics,
    ))
}

fn cmd_audit_inverse(args: &Args) -> CmdResult {
    let (vocab, triples) = load_graph(args.required("train")?)?;
    let store = store_of(&vocab, triples)?;
    let threshold = args.parse_or("threshold", 0.8, "number")?;
    let pairs = find_inverse_pairs(&store, threshold);
    if pairs.is_empty() {
        return Ok(format!("no inverse pairs at threshold {threshold}"));
    }
    let mut out = format!(
        "{} (near-)inverse pairs at threshold {threshold}:\n",
        pairs.len()
    );
    for p in pairs {
        let kind = if p.relation == p.inverse {
            "symmetric"
        } else {
            "inverse"
        };
        out.push_str(&format!(
            "  {:<10} {} ↔ {} (overlap {:.2})\n",
            kind,
            vocab.relation_label(p.relation).unwrap_or("?"),
            vocab.relation_label(p.inverse).unwrap_or("?"),
            p.overlap
        ));
    }
    out.push_str("these relations leak test answers; consider removing one direction (cf. FB15K-237 / WN18RR)");
    Ok(out)
}
