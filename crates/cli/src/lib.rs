//! # kgfd-cli — the `kgfd` command-line tool
//!
//! End-to-end fact discovery from the shell, against TSV knowledge graphs
//! in the standard `subject\trelation\tobject` benchmark format:
//!
//! ```text
//! kgfd generate --profile fb15k237 --scale mini --out data/
//! kgfd stats    --train data/train.tsv
//! kgfd train    --train data/train.tsv --model complex --out model.kgfd
//! kgfd eval     --train data/train.tsv --test data/test.tsv --model-file model.kgfd
//! kgfd discover --train data/train.tsv --model-file model.kgfd \
//!               --strategy ct --top-n 100 --max-candidates 200 --out facts.tsv
//! kgfd audit-inverse --train data/train.tsv
//! ```
//!
//! Command logic lives in [`commands::run`] and returns strings, so the
//! whole surface is unit-testable without process spawning.

#![warn(missing_docs)]

pub mod args;
pub mod commands;

pub use args::{ArgError, Args};
pub use commands::{exit_code, run, USAGE};
