//! Minimal `--key value` / `--flag` argument parsing (no external deps).

use std::collections::HashMap;

/// Parsed command line: a subcommand, keyed options, and boolean flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The first positional argument (subcommand).
    pub command: Option<String>,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

/// Parse errors with the offending token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// `--key` given twice.
    Duplicate(String),
    /// A positional argument after the subcommand.
    UnexpectedPositional(String),
    /// A required option is missing.
    Missing(String),
    /// An option value failed to parse.
    Invalid {
        /// Option name.
        key: String,
        /// Raw value.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::Duplicate(k) => write!(f, "option --{k} given more than once"),
            ArgError::UnexpectedPositional(p) => write!(f, "unexpected argument {p:?}"),
            ArgError::Missing(k) => write!(f, "missing required option --{k}"),
            ArgError::Invalid {
                key,
                value,
                expected,
            } => write!(f, "--{key} {value:?}: expected {expected}"),
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses raw arguments (without the program name). An option is any
    /// `--key` token; if the next token exists and does not start with
    /// `--`, it becomes the value, otherwise the option is a flag.
    pub fn parse(raw: impl IntoIterator<Item = String>) -> Result<Args, ArgError> {
        let mut args = Args::default();
        let mut iter = raw.into_iter().peekable();
        while let Some(token) = iter.next() {
            if let Some(key) = token.strip_prefix("--") {
                let takes_value = iter
                    .peek()
                    .map(|next| !next.starts_with("--"))
                    .unwrap_or(false);
                if takes_value {
                    let value = iter.next().expect("peeked");
                    if args.options.insert(key.to_string(), value).is_some() {
                        return Err(ArgError::Duplicate(key.to_string()));
                    }
                } else {
                    if args.flags.contains(&key.to_string()) {
                        return Err(ArgError::Duplicate(key.to_string()));
                    }
                    args.flags.push(key.to_string());
                }
            } else if args.command.is_none() {
                args.command = Some(token);
            } else {
                return Err(ArgError::UnexpectedPositional(token));
            }
        }
        Ok(args)
    }

    /// The value of `--key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// The value of a required `--key`.
    pub fn required(&self, key: &str) -> Result<&str, ArgError> {
        self.get(key).ok_or_else(|| ArgError::Missing(key.into()))
    }

    /// `true` if `--key` appeared as a flag.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// Parses `--key` as `T`, with a default when absent.
    pub fn parse_or<T: std::str::FromStr>(
        &self,
        key: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgError::Invalid {
                key: key.into(),
                value: raw.into(),
                expected,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, ArgError> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_command_options_and_flags() {
        let a = parse("train --dim 32 --prune --out model.bin").unwrap();
        assert_eq!(a.command.as_deref(), Some("train"));
        assert_eq!(a.get("dim"), Some("32"));
        assert_eq!(a.get("out"), Some("model.bin"));
        assert!(a.flag("prune"));
        assert!(!a.flag("missing"));
    }

    #[test]
    fn trailing_option_is_a_flag() {
        let a = parse("discover --consolidate").unwrap();
        assert!(a.flag("consolidate"));
    }

    #[test]
    fn duplicates_are_rejected() {
        assert_eq!(
            parse("x --dim 1 --dim 2").unwrap_err(),
            ArgError::Duplicate("dim".into())
        );
        assert_eq!(
            parse("x --a --a").unwrap_err(),
            ArgError::Duplicate("a".into())
        );
    }

    #[test]
    fn stray_positionals_are_rejected() {
        assert!(matches!(
            parse("train oops"),
            Err(ArgError::UnexpectedPositional(_))
        ));
    }

    #[test]
    fn typed_parsing_with_defaults() {
        let a = parse("x --epochs 7").unwrap();
        assert_eq!(a.parse_or("epochs", 3usize, "integer").unwrap(), 7);
        assert_eq!(a.parse_or("dim", 32usize, "integer").unwrap(), 32);
        let bad = parse("x --epochs seven").unwrap();
        assert!(bad.parse_or("epochs", 3usize, "integer").is_err());
    }

    #[test]
    fn required_reports_missing() {
        let a = parse("x").unwrap();
        assert_eq!(
            a.required("train").unwrap_err(),
            ArgError::Missing("train".into())
        );
    }
}
