//! Kill-and-resume integration tests against the real `kgfd` binary: a
//! training process is SIGKILLed mid-run, resumed with `--resume`, and the
//! final model file must be byte-for-byte identical to one from a run that
//! was never interrupted — including across different `--threads` values.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};

fn kgfd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_kgfd"))
}

fn tempdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kgfd-kill-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn generate_toy(dir: &Path) {
    let status = kgfd()
        .args(["generate", "--profile", "toy", "--out"])
        .arg(dir)
        .status()
        .unwrap();
    assert!(status.success());
}

fn train_args(dir: &Path, out: &Path, threads: usize) -> Vec<String> {
    [
        "train",
        "--train",
        &format!("{}/train.tsv", dir.display()),
        "--model",
        "complex",
        "--dim",
        "16",
        "--epochs",
        "60",
        "--seed",
        "11",
        "--threads",
        &threads.to_string(),
        "--out",
        &format!("{}", out.display()),
    ]
    .map(String::from)
    .to_vec()
}

fn checkpoints_beside(out: &Path) -> Vec<PathBuf> {
    let prefix = format!("{}.ckpt-", out.file_name().unwrap().to_string_lossy());
    let mut found: Vec<PathBuf> = std::fs::read_dir(out.parent().unwrap())
        .unwrap()
        .flatten()
        .filter(|e| e.file_name().to_string_lossy().starts_with(&prefix))
        .map(|e| e.path())
        .collect();
    found.sort();
    found
}

/// SIGKILL mid-training, then `--resume`: the resumed run's model file is
/// bit-identical to an uninterrupted run's — even though the uninterrupted
/// reference trains with a different thread count.
#[test]
fn sigkill_then_resume_reproduces_an_uninterrupted_run_byte_for_byte() {
    let dir = tempdir("sigkill");
    generate_toy(&dir);

    // Uninterrupted reference at 4 threads.
    let reference = dir.join("reference.kgfd");
    let status = kgfd()
        .args(train_args(&dir, &reference, 4))
        .status()
        .unwrap();
    assert!(status.success());

    // The victim: checkpoint every epoch, killed as soon as one exists.
    let victim = dir.join("victim.kgfd");
    let mut child = kgfd()
        .args(train_args(&dir, &victim, 1))
        .args(["--checkpoint-every", "1"])
        .spawn()
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if !checkpoints_beside(&victim).is_empty() {
            break; // at least one boundary is durable — kill now
        }
        if child.try_wait().unwrap().is_some() {
            break; // tiny dataset: the run can finish before we catch it
        }
        assert!(Instant::now() < deadline, "no checkpoint appeared in 60s");
        std::thread::sleep(Duration::from_millis(2));
    }
    let _ = child.kill(); // SIGKILL — no cleanup, no final write
    let _ = child.wait();

    // Resume (idempotent if the victim actually finished) and compare.
    let status = kgfd()
        .args(train_args(&dir, &victim, 1))
        .args(["--checkpoint-every", "1", "--resume"])
        .status()
        .unwrap();
    assert!(status.success());
    assert_eq!(
        std::fs::read(&reference).unwrap(),
        std::fs::read(&victim).unwrap(),
        "resumed model file must match the uninterrupted reference exactly"
    );
    assert!(
        checkpoints_beside(&victim).is_empty(),
        "completed run must clean up its checkpoints"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// An expired `--deadline` stops the run cooperatively: exit code 6, a
/// checkpoint on disk, no model at `--out`; `--resume` then completes with
/// exit 0 and the reference bytes.
#[test]
fn deadline_interrupt_exits_6_and_resume_completes() {
    let dir = tempdir("deadline");
    generate_toy(&dir);

    let reference = dir.join("reference.kgfd");
    let status = kgfd()
        .args(train_args(&dir, &reference, 1))
        .status()
        .unwrap();
    assert!(status.success());

    // A zero-second deadline trips before the first epoch.
    let out = dir.join("interrupted.kgfd");
    let output = kgfd()
        .args(train_args(&dir, &out, 1))
        .args(["--checkpoint-every", "1", "--deadline", "0"])
        .output()
        .unwrap();
    assert_eq!(
        output.status.code(),
        Some(6),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(!out.exists(), "an interrupted run must not write --out");
    assert!(
        !checkpoints_beside(&out).is_empty(),
        "the interrupt must leave a checkpoint behind"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("--resume"),
        "the error must point at --resume: {stderr}"
    );

    let status = kgfd()
        .args(train_args(&dir, &out, 1))
        .args(["--checkpoint-every", "1", "--resume"])
        .status()
        .unwrap();
    assert!(status.success());
    assert_eq!(
        std::fs::read(&reference).unwrap(),
        std::fs::read(&out).unwrap()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
