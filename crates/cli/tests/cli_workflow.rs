//! End-to-end CLI workflow tests: generate → stats → train → eval →
//! discover → audit, all through the library surface the binary wraps.

use kgfd_cli::{run, Args};

fn args(line: &str) -> Args {
    Args::parse(line.split_whitespace().map(String::from)).unwrap()
}

fn tempdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("kgfd-cli-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn full_workflow_on_toy_dataset() {
    let dir = tempdir("workflow");
    let d = dir.display();

    let out = run(&args(&format!("generate --profile toy --out {d}"))).unwrap();
    assert!(out.contains("toy-biomedical"), "{out}");
    assert!(dir.join("train.tsv").exists());
    assert!(dir.join("valid.tsv").exists());
    assert!(dir.join("test.tsv").exists());

    let out = run(&args(&format!("stats --train {d}/train.tsv"))).unwrap();
    assert!(out.contains("entities            16"), "{out}");
    assert!(out.contains("relations           5"), "{out}");
    assert!(out.contains("complement size"), "{out}");

    let model = dir.join("model.kgfd");
    let out = run(&args(&format!(
        "train --train {d}/train.tsv --model complex --dim 16 --epochs 25 --seed 4 --out {}",
        model.display()
    )))
    .unwrap();
    assert!(out.contains("trained complex"), "{out}");
    assert!(model.exists());

    let out = run(&args(&format!(
        "eval --train {d}/train.tsv --test {d}/test.tsv --valid {d}/valid.tsv --model-file {}",
        model.display()
    )))
    .unwrap();
    assert!(out.contains("MRR"), "{out}");

    let facts = dir.join("facts.tsv");
    let out = run(&args(&format!(
        "discover --train {d}/train.tsv --model-file {} --strategy ct \
         --top-n 10 --max-candidates 40 --out {}",
        model.display(),
        facts.display()
    )))
    .unwrap();
    assert!(out.contains("discovered"), "{out}");
    let written = std::fs::read_to_string(&facts).unwrap();
    for line in written.lines() {
        assert_eq!(line.split('\t').count(), 4, "s, r, o, rank: {line}");
    }

    let out = run(&args(&format!("audit-inverse --train {d}/train.tsv"))).unwrap();
    assert!(
        out.contains("inverse pairs") || out.contains("no inverse pairs"),
        "{out}"
    );

    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn stats_emits_json_when_asked() {
    let dir = tempdir("json");
    let d = dir.display();
    run(&args(&format!("generate --profile toy --out {d}"))).unwrap();
    let out = run(&args(&format!("stats --train {d}/train.tsv --json"))).unwrap();
    let parsed: serde_json::Value = serde_json::from_str(&out).unwrap();
    assert_eq!(parsed["summary"]["num_entities"], 16);
    assert!(parsed["transitivity"].is_number());
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn early_stopping_path_works() {
    let dir = tempdir("earlystop");
    let d = dir.display();
    run(&args(&format!("generate --profile toy --out {d}"))).unwrap();
    let model = dir.join("m.kgfd");
    let out = run(&args(&format!(
        "train --train {d}/train.tsv --valid {d}/valid.tsv --early-stop \
         --model distmult --dim 16 --epochs 40 --out {}",
        model.display()
    )))
    .unwrap();
    assert!(out.contains("early stopping"), "{out}");
    assert!(model.exists());
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn discover_scores_against_heldout() {
    let dir = tempdir("heldout");
    let d = dir.display();
    run(&args(&format!("generate --profile toy --out {d}"))).unwrap();
    let model = dir.join("m.kgfd");
    run(&args(&format!(
        "train --train {d}/train.tsv --model complex --dim 16 --epochs 30 --seed 4 --out {}",
        model.display()
    )))
    .unwrap();
    let out = run(&args(&format!(
        "discover --train {d}/train.tsv --model-file {} --strategy ef \
         --top-n 16 --max-candidates 100 --heldout {d}/test.tsv --out {d}/f.tsv",
        model.display()
    )))
    .unwrap();
    assert!(out.contains("held-out check:"), "{out}");
    assert!(out.contains("recall"), "{out}");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn fit_emits_a_valid_profile() {
    let dir = tempdir("fit");
    let d = dir.display();
    run(&args(&format!(
        "generate --profile fb15k237 --scale mini --out {d}"
    )))
    .unwrap();
    let out = run(&args(&format!("fit --train {d}/train.tsv --name refit"))).unwrap();
    let profile: serde_json::Value = serde_json::from_str(&out).unwrap();
    assert_eq!(profile["name"], "refit");
    assert_eq!(profile["entities"], 145);
    assert!(profile["entity_skew"].as_f64().unwrap() > 0.0);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn eval_per_relation_lists_relations() {
    let dir = tempdir("perrel");
    let d = dir.display();
    run(&args(&format!("generate --profile toy --out {d}"))).unwrap();
    let model = dir.join("m.kgfd");
    run(&args(&format!(
        "train --train {d}/train.tsv --model distmult --dim 16 --epochs 10 --out {}",
        model.display()
    )))
    .unwrap();
    let out = run(&args(&format!(
        "eval --train {d}/train.tsv --test {d}/test.tsv --model-file {} --per-relation",
        model.display()
    )))
    .unwrap();
    assert!(out.contains("per relation:"), "{out}");
    assert!(out.contains("treats"), "{out}");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn complete_ranks_entities_for_a_query() {
    let dir = tempdir("complete");
    let d = dir.display();
    run(&args(&format!("generate --profile toy --out {d}"))).unwrap();
    let model = dir.join("m.kgfd");
    run(&args(&format!(
        "train --train {d}/train.tsv --model complex --dim 16 --epochs 30 --seed 4 --out {}",
        model.display()
    )))
    .unwrap();
    let out = run(&args(&format!(
        "complete --train {d}/train.tsv --model-file {} --relation treats --subject drug0 --top 3",
        model.display()
    )))
    .unwrap();
    assert!(
        out.contains("top 3 completions of (drug0, treats, ?)"),
        "{out}"
    );
    assert_eq!(out.lines().count(), 4, "{out}");
    // Requiring both or neither side is an error.
    let err = run(&args(&format!(
        "complete --train {d}/train.tsv --model-file {} --relation treats",
        model.display()
    )))
    .unwrap_err()
    .to_string();
    assert!(err.contains("exactly one"), "{err}");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn stats_reports_relation_categories() {
    let dir = tempdir("cats");
    let d = dir.display();
    run(&args(&format!("generate --profile toy --out {d}"))).unwrap();
    let out = run(&args(&format!("stats --train {d}/train.tsv"))).unwrap();
    assert!(out.contains("relation categories"), "{out}");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn helpful_errors() {
    // Unknown command mentions usage.
    let err = run(&args("frobnicate")).unwrap_err().to_string();
    assert!(err.contains("unknown command"));
    // Missing required option is named.
    let err = run(&args("stats")).unwrap_err().to_string();
    assert!(err.contains("--train"), "{err}");
    // Unknown strategy/model are named.
    let dir = tempdir("errors");
    let d = dir.display();
    run(&args(&format!("generate --profile toy --out {d}"))).unwrap();
    let err = run(&args(&format!(
        "train --train {d}/train.tsv --model gpt --out {d}/x"
    )))
    .unwrap_err()
    .to_string();
    assert!(err.contains("unknown model"), "{err}");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn eval_rejects_mismatched_model() {
    let dir = tempdir("mismatch");
    let d = dir.display();
    run(&args(&format!("generate --profile toy --out {d}"))).unwrap();
    // Train a model on a *different* (mini fb15k237) graph.
    let other = tempdir("mismatch-other");
    let od = other.display();
    run(&args(&format!(
        "generate --profile fb15k237 --scale mini --out {od}"
    )))
    .unwrap();
    let model = dir.join("wrong.kgfd");
    run(&args(&format!(
        "train --train {od}/train.tsv --model distmult --dim 16 --epochs 2 --out {}",
        model.display()
    )))
    .unwrap();
    let err = run(&args(&format!(
        "eval --train {d}/train.tsv --test {d}/test.tsv --model-file {}",
        model.display()
    )))
    .unwrap_err()
    .to_string();
    assert!(err.contains("does not match"), "{err}");
    let _ = std::fs::remove_dir_all(dir);
    let _ = std::fs::remove_dir_all(other);
}

#[test]
fn held_out_split_with_unknown_entity_is_rejected() {
    let dir = tempdir("unknown-entity");
    let d = dir.display();
    run(&args(&format!("generate --profile toy --out {d}"))).unwrap();
    std::fs::write(dir.join("bad.tsv"), "martian\ttreats\tdisease0\n").unwrap();
    let model = dir.join("m.kgfd");
    run(&args(&format!(
        "train --train {d}/train.tsv --model transe --dim 8 --epochs 2 --out {}",
        model.display()
    )))
    .unwrap();
    let err = run(&args(&format!(
        "eval --train {d}/train.tsv --test {d}/bad.tsv --model-file {}",
        model.display()
    )))
    .unwrap_err()
    .to_string();
    assert!(err.contains("martian"), "{err}");
    let _ = std::fs::remove_dir_all(dir);
}
