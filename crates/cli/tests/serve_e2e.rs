//! End-to-end test of `kgfd serve` as a real process: boot, announce,
//! liveness phase, one query per endpoint, SIGTERM drain, exit 0.

#![cfg(unix)]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn kgfd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_kgfd"))
}

fn tempdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kgfd-serve-e2e-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One HTTP request over a fresh connection; returns the raw response.
fn request(addr: &str, method: &str, path: &str, body: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    stream.flush().unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
}

#[test]
fn serve_boots_answers_and_drains_on_sigterm() {
    let dir = tempdir("drain");
    let train_tsv = dir.join("train.tsv");
    let model_file = dir.join("toy.kgm");

    // Fixture: the toy dataset and a small model trained on it, written
    // through the same library code the CLI uses.
    let data = kgfd_datasets::toy_biomedical();
    let tsv = std::fs::File::create(&train_tsv).unwrap();
    kgfd_kg::write_triples_tsv(tsv, data.train.triples(), &data.vocab).unwrap();
    let (model, _) = kgfd_embed::train(
        kgfd_embed::ModelKind::DistMult,
        &data.train,
        &kgfd_embed::TrainConfig {
            dim: 8,
            epochs: 5,
            seed: 3,
            ..kgfd_embed::TrainConfig::default()
        },
    );
    kgfd_embed::write_model_file(&model_file, model.as_ref()).unwrap();

    let mut child = kgfd()
        .args([
            "serve",
            "--train",
            train_tsv.to_str().unwrap(),
            "--model-file",
            model_file.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--serve-metrics",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--for-secs",
            "60",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn kgfd serve");

    // Both endpoints announce their bound (ephemeral) addresses on stderr.
    let stderr = BufReader::new(child.stderr.take().unwrap());
    let mut serve_addr = None;
    let mut metrics_addr = None;
    let parse = |line: &str, prefix: &str| {
        line.strip_prefix(prefix)
            .map(|rest| rest.trim().trim_start_matches("http://").to_string())
    };
    for line in stderr.lines() {
        let line = line.unwrap();
        if let Some(a) = parse(&line, "serving kgfd on ") {
            serve_addr = Some(a);
        } else if let Some(a) = parse(&line, "serving metrics on ") {
            metrics_addr = Some(a);
        }
        if serve_addr.is_some() && metrics_addr.is_some() {
            break;
        }
    }
    let serve_addr = serve_addr.expect("serve address announced");
    let metrics_addr = metrics_addr.expect("metrics address announced");

    // The phase race regression, end to end: the *first* scrape after the
    // announce must already report this command's phase.
    let health = request(&metrics_addr, "GET", "/healthz", "");
    assert!(
        health.contains("\"phase\":\"serve\""),
        "metrics /healthz must show phase serve immediately, got: {health}"
    );

    // The serving endpoints answer.
    let health = request(&serve_addr, "GET", "/healthz", "");
    assert!(health.contains("\"status\":\"ok\""), "got: {health}");
    assert!(health.contains("toy"), "got: {health}");
    let t = data.train.triples()[0];
    let body = format!(
        "{{\"model\": \"toy\", \"triples\": [[\"{}\", \"{}\", \"{}\"]]}}",
        data.vocab.entity_label(t.subject).unwrap(),
        data.vocab.relation_label(t.relation).unwrap(),
        data.vocab.entity_label(t.object).unwrap()
    );
    let rank = request(&serve_addr, "POST", "/v1/rank", &body);
    assert!(rank.starts_with("HTTP/1.1 200"), "got: {rank}");
    let bad = request(&serve_addr, "POST", "/v1/rank", "{oops");
    assert!(bad.starts_with("HTTP/1.1 400"), "got: {bad}");

    // SIGTERM → graceful drain → exit 0 with the closing report.
    let pid = child.id().to_string();
    let status = Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .expect("send SIGTERM");
    assert!(status.success());
    let deadline = Instant::now() + Duration::from_secs(30);
    let exit = loop {
        if let Some(status) = child.try_wait().unwrap() {
            break status;
        }
        assert!(
            Instant::now() < deadline,
            "kgfd serve did not exit on SIGTERM"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(exit.success(), "drained exit must be 0, got {exit:?}");
    let mut stdout = String::new();
    child
        .stdout
        .take()
        .unwrap()
        .read_to_string(&mut stdout)
        .unwrap();
    assert!(
        stdout.contains("drained cleanly: 2/2 workers joined, 0 handler panics"),
        "closing report must show a clean drain, got: {stdout}"
    );
}
