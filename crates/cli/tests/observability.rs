//! Observability behaviour of the CLI: `--metrics-out` JSONL files,
//! `--quiet`, and the `"n/a"` rendering of undefined losses.
//!
//! These tests install process-global observers, so they serialize on a
//! mutex; they live in their own test binary to keep the workflow tests'
//! observers out of the picture.

use kgfd_cli::{run, Args};
use std::sync::Mutex;

static OBSERVER_LOCK: Mutex<()> = Mutex::new(());

fn args(line: &str) -> Args {
    Args::parse(line.split_whitespace().map(String::from)).unwrap()
}

fn tempdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("kgfd-obs-cli-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Parses every line of a JSONL sink back through the typed event schema.
fn read_events(path: &std::path::Path) -> Vec<kgfd_obs::Event> {
    std::fs::read_to_string(path)
        .unwrap()
        .lines()
        .map(|line| {
            let value: serde_json::Value =
                serde_json::from_str(line).unwrap_or_else(|e| panic!("bad JSONL line {line}: {e}"));
            serde::Deserialize::deserialize(&value)
                .unwrap_or_else(|e| panic!("line does not match the event schema ({e}): {line}"))
        })
        .collect()
}

#[test]
fn discover_metrics_out_is_parseable_jsonl_with_spans_and_manifest() {
    let _serial = OBSERVER_LOCK.lock().unwrap();
    let dir = tempdir("discover");
    let d = dir.display();
    run(&args(&format!("generate --profile toy --out {d}"))).unwrap();
    let model = dir.join("m.kgfd");
    run(&args(&format!(
        "train --train {d}/train.tsv --model complex --dim 16 --epochs 20 --seed 4 --out {}",
        model.display()
    )))
    .unwrap();

    let metrics = dir.join("run.jsonl");
    run(&args(&format!(
        "discover --train {d}/train.tsv --model-file {} --strategy ef \
         --top-n 10 --max-candidates 40 --metrics-out {}",
        model.display(),
        metrics.display()
    )))
    .unwrap();

    let events = read_events(&metrics);
    assert!(!events.is_empty());

    let span_names: Vec<&str> = events
        .iter()
        .filter_map(|e| match &e.payload {
            kgfd_obs::Payload::SpanEnd { name, .. } => Some(name.as_str()),
            _ => None,
        })
        .collect();
    assert!(
        span_names.contains(&"discover.preparation"),
        "{span_names:?}"
    );
    assert!(
        span_names.contains(&"discover.generation"),
        "{span_names:?}"
    );
    assert!(
        span_names.contains(&"discover.evaluation"),
        "{span_names:?}"
    );
    assert!(span_names.contains(&"discover.total"), "{span_names:?}");

    // Per-relation spans carry the relation as a structured field. The toy
    // graph has 5 relations, so generation runs 5 times.
    let generation_relations: Vec<&kgfd_obs::FieldValue> = events
        .iter()
        .filter_map(|e| match &e.payload {
            kgfd_obs::Payload::SpanEnd { name, fields, .. } if name == "discover.generation" => {
                fields
                    .iter()
                    .find(|f| f.key == "relation")
                    .map(|f| &f.value)
            }
            _ => None,
        })
        .collect();
    assert_eq!(
        generation_relations.len(),
        5,
        "one generation span per relation"
    );

    // The closing event is the run manifest.
    match &events.last().unwrap().payload {
        kgfd_obs::Payload::Manifest(m) => {
            assert_eq!(m.command, "discover");
            assert_eq!(m.strategy, "ENTITY FREQUENCY");
            assert_eq!(m.dataset.relations, 5);
            assert!(m.wall_clock_s > 0.0);
            assert!(m.config.iter().any(|f| f.key == "top_n"));
        }
        other => panic!("expected a closing manifest, got {other:?}"),
    }
}

#[test]
fn train_metrics_out_has_per_epoch_loss_events() {
    let _serial = OBSERVER_LOCK.lock().unwrap();
    let dir = tempdir("train");
    let d = dir.display();
    run(&args(&format!("generate --profile toy --out {d}"))).unwrap();
    let metrics = dir.join("train.jsonl");
    run(&args(&format!(
        "train --train {d}/train.tsv --model distmult --dim 16 --epochs 7 --out {d}/m.kgfd \
         --metrics-out {}",
        metrics.display()
    )))
    .unwrap();

    let events = read_events(&metrics);
    let losses: Vec<f64> = events
        .iter()
        .filter_map(|e| match &e.payload {
            kgfd_obs::Payload::Metric { name, value, .. } if name == "embed.train.epoch_loss" => {
                Some(*value)
            }
            _ => None,
        })
        .collect();
    assert_eq!(losses.len(), 7, "one loss event per epoch");
    assert!(losses.iter().all(|l| l.is_finite()));
    match &events.last().unwrap().payload {
        kgfd_obs::Payload::Manifest(m) => assert_eq!(m.command, "train"),
        other => panic!("expected a closing manifest, got {other:?}"),
    }
}

#[test]
fn zero_epoch_loss_renders_as_na_everywhere() {
    let _serial = OBSERVER_LOCK.lock().unwrap();
    let dir = tempdir("zero-epoch");
    let d = dir.display();
    run(&args(&format!("generate --profile toy --out {d}"))).unwrap();
    let metrics = dir.join("zero.jsonl");
    let out = run(&args(&format!(
        "train --train {d}/train.tsv --model transe --dim 8 --epochs 0 --out {d}/m.kgfd \
         --metrics-out {}",
        metrics.display()
    )))
    .unwrap();
    assert!(out.contains("final training loss n/a"), "{out}");
    assert!(!out.contains("NaN"), "{out}");

    let raw = std::fs::read_to_string(&metrics).unwrap();
    assert!(!raw.contains("NaN"), "NaN leaked into JSON: {raw}");
    let events = read_events(&metrics);
    match &events.last().unwrap().payload {
        kgfd_obs::Payload::Manifest(m) => {
            let loss = m.config.iter().find(|f| f.key == "final_loss").unwrap();
            assert_eq!(loss.value, kgfd_obs::FieldValue::Text("n/a".to_string()));
        }
        other => panic!("expected a closing manifest, got {other:?}"),
    }
}

#[test]
fn quiet_run_produces_no_stderr() {
    let dir = tempdir("quiet");
    let d = dir.display();
    // Set up the inputs in-process (serialized with the other tests).
    {
        let _serial = OBSERVER_LOCK.lock().unwrap();
        run(&args(&format!("generate --profile toy --out {d}"))).unwrap();
        run(&args(&format!(
            "train --train {d}/train.tsv --model distmult --dim 16 --epochs 10 --out {d}/m.kgfd"
        )))
        .unwrap();
    }
    // Then drive the real binary so stderr can be captured end-to-end.
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_kgfd"))
        .args([
            "discover",
            "--train",
            &format!("{d}/train.tsv"),
            "--model-file",
            &format!("{d}/m.kgfd"),
            "--top-n",
            "10",
            "--max-candidates",
            "40",
            "--quiet",
        ])
        .output()
        .expect("kgfd binary runs");
    assert!(output.status.success());
    assert!(
        output.stderr.is_empty(),
        "--quiet must silence stderr, got: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(!output.stdout.is_empty(), "the report still goes to stdout");
}
