//! Observability behaviour of the CLI: `--metrics-out` JSONL files,
//! `--quiet`, and the `"n/a"` rendering of undefined losses.
//!
//! These tests install process-global observers, so they serialize on a
//! mutex; they live in their own test binary to keep the workflow tests'
//! observers out of the picture.

use kgfd_cli::{run, Args};
use std::sync::Mutex;

static OBSERVER_LOCK: Mutex<()> = Mutex::new(());

fn args(line: &str) -> Args {
    Args::parse(line.split_whitespace().map(String::from)).unwrap()
}

fn tempdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("kgfd-obs-cli-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Parses every line of a JSONL sink back through the typed event schema.
fn read_events(path: &std::path::Path) -> Vec<kgfd_obs::Event> {
    std::fs::read_to_string(path)
        .unwrap()
        .lines()
        .map(|line| {
            let value: serde_json::Value =
                serde_json::from_str(line).unwrap_or_else(|e| panic!("bad JSONL line {line}: {e}"));
            serde::Deserialize::deserialize(&value)
                .unwrap_or_else(|e| panic!("line does not match the event schema ({e}): {line}"))
        })
        .collect()
}

#[test]
fn discover_metrics_out_is_parseable_jsonl_with_spans_and_manifest() {
    let _serial = OBSERVER_LOCK.lock().unwrap();
    let dir = tempdir("discover");
    let d = dir.display();
    run(&args(&format!("generate --profile toy --out {d}"))).unwrap();
    let model = dir.join("m.kgfd");
    run(&args(&format!(
        "train --train {d}/train.tsv --model complex --dim 16 --epochs 20 --seed 4 --out {}",
        model.display()
    )))
    .unwrap();

    let metrics = dir.join("run.jsonl");
    run(&args(&format!(
        "discover --train {d}/train.tsv --model-file {} --strategy ef \
         --top-n 10 --max-candidates 40 --metrics-out {}",
        model.display(),
        metrics.display()
    )))
    .unwrap();

    let events = read_events(&metrics);
    assert!(!events.is_empty());

    let span_names: Vec<&str> = events
        .iter()
        .filter_map(|e| match &e.payload {
            kgfd_obs::Payload::SpanEnd { name, .. } => Some(name.as_str()),
            _ => None,
        })
        .collect();
    assert!(
        span_names.contains(&"discover.preparation"),
        "{span_names:?}"
    );
    assert!(
        span_names.contains(&"discover.generation"),
        "{span_names:?}"
    );
    assert!(
        span_names.contains(&"discover.evaluation"),
        "{span_names:?}"
    );
    assert!(span_names.contains(&"discover.total"), "{span_names:?}");

    // Per-relation spans carry the relation as a structured field. The toy
    // graph has 5 relations, so generation runs 5 times.
    let generation_relations: Vec<&kgfd_obs::FieldValue> = events
        .iter()
        .filter_map(|e| match &e.payload {
            kgfd_obs::Payload::SpanEnd { name, fields, .. } if name == "discover.generation" => {
                fields
                    .iter()
                    .find(|f| f.key == "relation")
                    .map(|f| &f.value)
            }
            _ => None,
        })
        .collect();
    assert_eq!(
        generation_relations.len(),
        5,
        "one generation span per relation"
    );

    // The closing event is the run manifest.
    match &events.last().unwrap().payload {
        kgfd_obs::Payload::Manifest(m) => {
            assert_eq!(m.command, "discover");
            assert_eq!(m.strategy, "ENTITY FREQUENCY");
            assert_eq!(m.dataset.relations, 5);
            assert!(m.wall_clock_s > 0.0);
            assert!(m.config.iter().any(|f| f.key == "top_n"));
        }
        other => panic!("expected a closing manifest, got {other:?}"),
    }
}

#[test]
fn train_metrics_out_has_per_epoch_loss_events() {
    let _serial = OBSERVER_LOCK.lock().unwrap();
    let dir = tempdir("train");
    let d = dir.display();
    run(&args(&format!("generate --profile toy --out {d}"))).unwrap();
    let metrics = dir.join("train.jsonl");
    run(&args(&format!(
        "train --train {d}/train.tsv --model distmult --dim 16 --epochs 7 --out {d}/m.kgfd \
         --metrics-out {}",
        metrics.display()
    )))
    .unwrap();

    let events = read_events(&metrics);
    let losses: Vec<f64> = events
        .iter()
        .filter_map(|e| match &e.payload {
            kgfd_obs::Payload::Metric { name, value, .. } if name == "embed.train.epoch_loss" => {
                Some(*value)
            }
            _ => None,
        })
        .collect();
    assert_eq!(losses.len(), 7, "one loss event per epoch");
    assert!(losses.iter().all(|l| l.is_finite()));
    match &events.last().unwrap().payload {
        kgfd_obs::Payload::Manifest(m) => assert_eq!(m.command, "train"),
        other => panic!("expected a closing manifest, got {other:?}"),
    }
}

#[test]
fn zero_epoch_loss_renders_as_na_everywhere() {
    let _serial = OBSERVER_LOCK.lock().unwrap();
    let dir = tempdir("zero-epoch");
    let d = dir.display();
    run(&args(&format!("generate --profile toy --out {d}"))).unwrap();
    let metrics = dir.join("zero.jsonl");
    let out = run(&args(&format!(
        "train --train {d}/train.tsv --model transe --dim 8 --epochs 0 --out {d}/m.kgfd \
         --metrics-out {}",
        metrics.display()
    )))
    .unwrap();
    assert!(out.contains("final training loss n/a"), "{out}");
    assert!(!out.contains("NaN"), "{out}");

    let raw = std::fs::read_to_string(&metrics).unwrap();
    assert!(!raw.contains("NaN"), "NaN leaked into JSON: {raw}");
    let events = read_events(&metrics);
    match &events.last().unwrap().payload {
        kgfd_obs::Payload::Manifest(m) => {
            let loss = m.config.iter().find(|f| f.key == "final_loss").unwrap();
            assert_eq!(loss.value, kgfd_obs::FieldValue::Text("n/a".to_string()));
        }
        other => panic!("expected a closing manifest, got {other:?}"),
    }
}

#[test]
fn trace_out_and_flame_out_write_valid_exports() {
    let _serial = OBSERVER_LOCK.lock().unwrap();
    let dir = tempdir("trace-out");
    let d = dir.display();
    run(&args(&format!("generate --profile toy --out {d}"))).unwrap();
    run(&args(&format!(
        "train --train {d}/train.tsv --model transe --dim 16 --epochs 5 --out {d}/m.kgfd"
    )))
    .unwrap();

    let trace = dir.join("trace.json");
    let flame = dir.join("flame.txt");
    run(&args(&format!(
        "discover --train {d}/train.tsv --model-file {d}/m.kgfd --strategy ur \
         --top-n 10 --max-candidates 40 --threads 4 --trace-out {} --flame-out {}",
        trace.display(),
        flame.display()
    )))
    .unwrap();

    // The Chrome trace must be valid JSON with complete-duration events
    // whose parent references all resolve.
    let json: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&trace).unwrap()).unwrap();
    let events = json["traceEvents"].as_array().expect("traceEvents array");
    assert!(!events.is_empty());
    let ids: std::collections::HashSet<u64> = events
        .iter()
        .map(|e| e["args"]["id"].as_u64().expect("args.id"))
        .collect();
    for e in events {
        assert_eq!(e["ph"], "X", "complete-duration events only");
        assert!(e["dur"].as_u64().is_some() && e["ts"].as_u64().is_some());
        if let Some(parent) = e["args"]["parent"].as_u64() {
            assert!(ids.contains(&parent), "dangling parent {parent}");
        }
    }
    let names: Vec<&str> = events.iter().filter_map(|e| e["name"].as_str()).collect();
    assert!(names.contains(&"cli.command"), "{names:?}");
    assert!(names.contains(&"discover.total"), "{names:?}");
    assert!(names.contains(&"discover.relation"), "{names:?}");

    // The flamegraph is collapsed-stack text: `root;child;... <self_us>`.
    let flame_text = std::fs::read_to_string(&flame).unwrap();
    assert!(!flame_text.trim().is_empty());
    for line in flame_text.lines() {
        let (stack, count) = line.rsplit_once(' ').expect("stack <count>");
        assert!(!stack.is_empty());
        count.parse::<u64>().expect("numeric self-time");
    }
    assert!(
        flame_text
            .lines()
            .any(|l| l.starts_with("cli.command;discover.total;")),
        "stacks should be rooted at cli.command: {flame_text}"
    );

    // In-process runs must leave the global collector disabled and empty.
    assert!(!kgfd_obs::collector().is_enabled());
    assert!(kgfd_obs::collector().is_empty());
}

#[test]
fn serve_metrics_exposes_prometheus_text_during_train() {
    use std::io::{BufRead, BufReader, Read, Write};

    let dir = tempdir("serve");
    let d = dir.display();
    {
        let _serial = OBSERVER_LOCK.lock().unwrap();
        run(&args(&format!("generate --profile toy --out {d}"))).unwrap();
    }
    // Train long enough that the run is still in flight when we scrape it.
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_kgfd"))
        .args([
            "train",
            "--train",
            &format!("{d}/train.tsv"),
            "--model",
            "distmult",
            "--dim",
            "64",
            "--epochs",
            "4000",
            "--out",
            &format!("{d}/m.kgfd"),
            "--serve-metrics",
            "127.0.0.1:0",
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("kgfd binary runs");

    // The CLI announces the bound (ephemeral) port on stderr.
    let mut stderr = BufReader::new(child.stderr.take().unwrap());
    let addr = loop {
        let mut line = String::new();
        if stderr.read_line(&mut line).unwrap() == 0 {
            let _ = child.kill();
            panic!("child exited before announcing the metrics endpoint");
        }
        if let Some(rest) = line.trim().strip_prefix("serving metrics on http://") {
            break rest.to_string();
        }
    };

    // Scrape /metrics until the per-epoch loss gauge appears (the first
    // epochs may not have finished yet).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    let body = loop {
        let mut stream = std::net::TcpStream::connect(&addr).expect("endpoint is up");
        stream
            .write_all(format!("GET /metrics HTTP/1.1\r\nHost: {addr}\r\n\r\n").as_bytes())
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").expect("headers then body");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("text/plain"), "{head}");
        if body.contains("embed_train_epoch_loss") {
            break body.to_string();
        }
        assert!(
            std::time::Instant::now() < deadline,
            "no embed_train_epoch_loss gauge after 30s; last body:\n{body}"
        );
        std::thread::sleep(std::time::Duration::from_millis(50));
    };
    // Valid Prometheus exposition: TYPE comments and `name value` samples.
    assert!(
        body.contains("# TYPE embed_train_epoch_loss gauge"),
        "{body}"
    );
    for line in body.lines().filter(|l| !l.starts_with('#')) {
        let (name, value) = line.rsplit_once(' ').expect("name value");
        assert!(!name.is_empty());
        assert!(
            value.parse::<f64>().is_ok() || ["NaN", "+Inf", "-Inf"].contains(&value),
            "unparseable sample value in {line:?}"
        );
    }
    let loss_sample = body
        .lines()
        .find(|l| l.starts_with("embed_train_epoch_loss "))
        .expect("per-epoch loss gauge sample");
    let loss: f64 = loss_sample.split(' ').nth(1).unwrap().parse().unwrap();
    assert!(loss.is_finite());

    let _ = child.kill();
    let _ = child.wait();
}

#[test]
fn quiet_run_produces_no_stderr() {
    let dir = tempdir("quiet");
    let d = dir.display();
    // Set up the inputs in-process (serialized with the other tests).
    {
        let _serial = OBSERVER_LOCK.lock().unwrap();
        run(&args(&format!("generate --profile toy --out {d}"))).unwrap();
        run(&args(&format!(
            "train --train {d}/train.tsv --model distmult --dim 16 --epochs 10 --out {d}/m.kgfd"
        )))
        .unwrap();
    }
    // Then drive the real binary so stderr can be captured end-to-end.
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_kgfd"))
        .args([
            "discover",
            "--train",
            &format!("{d}/train.tsv"),
            "--model-file",
            &format!("{d}/m.kgfd"),
            "--top-n",
            "10",
            "--max-candidates",
            "40",
            "--quiet",
        ])
        .output()
        .expect("kgfd binary runs");
    assert!(output.status.success());
    assert!(
        output.stderr.is_empty(),
        "--quiet must silence stderr, got: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(!output.stdout.is_empty(), "the report still goes to stdout");
}
