//! Property-based tests of the knowledge-graph substrate invariants.

use kgfd_kg::{
    read_triples_tsv, write_triples_tsv, KnownTriples, Side, Triple, TripleStore, Vocabulary,
};
use proptest::prelude::*;

const N: u32 = 12;
const K: u32 = 4;

fn arb_triple() -> impl Strategy<Value = Triple> {
    (0..N, 0..K, 0..N).prop_map(|(s, r, o)| Triple::new(s, r, o))
}

fn arb_triples() -> impl Strategy<Value = Vec<Triple>> {
    proptest::collection::vec(arb_triple(), 0..120)
}

proptest! {
    #[test]
    fn store_len_counts_distinct_triples(triples in arb_triples()) {
        let store = TripleStore::new(N as usize, K as usize, triples.clone()).unwrap();
        let mut dedup = triples.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(store.len(), dedup.len());
    }

    #[test]
    fn store_contains_exactly_its_inputs(triples in arb_triples(), probe in arb_triple()) {
        let store = TripleStore::new(N as usize, K as usize, triples.clone()).unwrap();
        prop_assert_eq!(store.contains(&probe), triples.contains(&probe));
    }

    #[test]
    fn relation_slices_partition_the_store(triples in arb_triples()) {
        let store = TripleStore::new(N as usize, K as usize, triples).unwrap();
        let total: usize = (0..K)
            .map(|r| store.triples_of_relation(r.into()).len())
            .sum();
        prop_assert_eq!(total, store.len());
        for r in 0..K {
            for t in store.triples_of_relation(r.into()) {
                prop_assert_eq!(t.relation.0, r);
            }
        }
    }

    #[test]
    fn side_index_counts_sum_to_relation_size(triples in arb_triples()) {
        let store = TripleStore::new(N as usize, K as usize, triples).unwrap();
        for r in 0..K {
            let m = store.triples_of_relation(r.into()).len() as u64;
            prop_assert_eq!(store.subject_index(r.into()).total_count(), m);
            prop_assert_eq!(store.object_index(r.into()).total_count(), m);
        }
    }

    #[test]
    fn global_side_counts_sum_to_store_len(triples in arb_triples()) {
        let store = TripleStore::new(N as usize, K as usize, triples).unwrap();
        for side in Side::BOTH {
            let sum: u64 = store.global_side_counts(side).iter().map(|&c| c as u64).sum();
            prop_assert_eq!(sum, store.len() as u64);
        }
    }

    #[test]
    fn complement_plus_store_covers_all_triples(triples in arb_triples()) {
        let store = TripleStore::new(N as usize, K as usize, triples).unwrap();
        let all = (N as u128) * (N as u128) * (K as u128);
        prop_assert_eq!(store.complement_size() + store.len() as u128, all);
    }

    #[test]
    fn known_triples_agrees_with_membership(triples in arb_triples(), probe in arb_triple()) {
        let known = KnownTriples::from_slices([&triples[..]]);
        prop_assert_eq!(known.contains(&probe), triples.contains(&probe));
    }

    #[test]
    fn known_triples_object_lookup_is_complete(triples in arb_triples()) {
        let known = KnownTriples::from_slices([&triples[..]]);
        for t in &triples {
            prop_assert!(known.true_objects(t.subject, t.relation).contains(&t.object));
            prop_assert!(known.true_subjects(t.relation, t.object).contains(&t.subject));
        }
    }

    #[test]
    fn tsv_roundtrip_preserves_triples(triples in arb_triples()) {
        let vocab = Vocabulary::synthetic(N as usize, K as usize);
        let mut buf = Vec::new();
        write_triples_tsv(&mut buf, &triples, &vocab).unwrap();
        let mut vocab2 = Vocabulary::new();
        let back = read_triples_tsv(&buf[..], &mut vocab2).unwrap();
        prop_assert_eq!(back.len(), triples.len());
        // Labels (not raw ids) must agree after re-interning.
        for (orig, re) in triples.iter().zip(&back) {
            prop_assert_eq!(
                vocab.entity_label(orig.subject),
                vocab2.entity_label(re.subject)
            );
            prop_assert_eq!(
                vocab.relation_label(orig.relation),
                vocab2.relation_label(re.relation)
            );
            prop_assert_eq!(
                vocab.entity_label(orig.object),
                vocab2.entity_label(re.object)
            );
        }
    }
}
