//! String interning for entity and relation labels.
//!
//! All algorithms in this workspace operate on dense integer ids; the
//! vocabulary is the single place where human-readable labels live. Interning
//! guarantees the density invariant relied upon by flat per-entity arrays:
//! a vocabulary with `N` entities has exactly the ids `0..N`.

use crate::{EntityId, RelationId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Bidirectional mapping between labels and dense ids, for entities and
/// relations separately.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Vocabulary {
    entity_labels: Vec<String>,
    relation_labels: Vec<String>,
    #[serde(skip)]
    entity_index: HashMap<String, EntityId>,
    #[serde(skip)]
    relation_index: HashMap<String, RelationId>,
}

impl Vocabulary {
    /// An empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns an entity label, returning its id (existing or new).
    pub fn intern_entity(&mut self, label: &str) -> EntityId {
        if let Some(&id) = self.entity_index.get(label) {
            return id;
        }
        let id = EntityId(self.entity_labels.len() as u32);
        self.entity_labels.push(label.to_owned());
        self.entity_index.insert(label.to_owned(), id);
        id
    }

    /// Interns a relation label, returning its id (existing or new).
    pub fn intern_relation(&mut self, label: &str) -> RelationId {
        if let Some(&id) = self.relation_index.get(label) {
            return id;
        }
        let id = RelationId(self.relation_labels.len() as u32);
        self.relation_labels.push(label.to_owned());
        self.relation_index.insert(label.to_owned(), id);
        id
    }

    /// Looks up an entity id by label without interning.
    pub fn entity(&self, label: &str) -> Option<EntityId> {
        self.entity_index.get(label).copied()
    }

    /// Looks up a relation id by label without interning.
    pub fn relation(&self, label: &str) -> Option<RelationId> {
        self.relation_index.get(label).copied()
    }

    /// The label of an entity id, if in range.
    pub fn entity_label(&self, id: EntityId) -> Option<&str> {
        self.entity_labels.get(id.index()).map(String::as_str)
    }

    /// The label of a relation id, if in range.
    pub fn relation_label(&self, id: RelationId) -> Option<&str> {
        self.relation_labels.get(id.index()).map(String::as_str)
    }

    /// Number of distinct entities.
    pub fn num_entities(&self) -> usize {
        self.entity_labels.len()
    }

    /// Number of distinct relation types.
    pub fn num_relations(&self) -> usize {
        self.relation_labels.len()
    }

    /// Rebuilds the label → id hash indexes. Needed after deserializing,
    /// since the indexes are derived state and skipped by serde.
    pub fn rebuild_indexes(&mut self) {
        self.entity_index = self
            .entity_labels
            .iter()
            .enumerate()
            .map(|(i, l)| (l.clone(), EntityId(i as u32)))
            .collect();
        self.relation_index = self
            .relation_labels
            .iter()
            .enumerate()
            .map(|(i, l)| (l.clone(), RelationId(i as u32)))
            .collect();
    }

    /// Builds a synthetic vocabulary `e0..eN`, `r0..rK` for generated graphs
    /// that have no natural labels.
    pub fn synthetic(num_entities: usize, num_relations: usize) -> Self {
        let mut v = Vocabulary::new();
        for i in 0..num_entities {
            v.intern_entity(&format!("e{i}"));
        }
        for i in 0..num_relations {
            v.intern_relation(&format!("r{i}"));
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut v = Vocabulary::new();
        let a = v.intern_entity("alice");
        let b = v.intern_entity("bob");
        let a2 = v.intern_entity("alice");
        assert_eq!(a, a2);
        assert_eq!(a, EntityId(0));
        assert_eq!(b, EntityId(1));
        assert_eq!(v.num_entities(), 2);
    }

    #[test]
    fn lookup_without_interning_does_not_grow() {
        let mut v = Vocabulary::new();
        v.intern_entity("x");
        assert!(v.entity("missing").is_none());
        assert_eq!(v.num_entities(), 1);
    }

    #[test]
    fn labels_roundtrip() {
        let mut v = Vocabulary::new();
        let e = v.intern_entity("aspirin");
        let r = v.intern_relation("treats");
        assert_eq!(v.entity_label(e), Some("aspirin"));
        assert_eq!(v.relation_label(r), Some("treats"));
        assert_eq!(v.entity_label(EntityId(99)), None);
    }

    #[test]
    fn synthetic_vocabulary_has_requested_shape() {
        let v = Vocabulary::synthetic(5, 3);
        assert_eq!(v.num_entities(), 5);
        assert_eq!(v.num_relations(), 3);
        assert_eq!(v.entity("e4"), Some(EntityId(4)));
        assert_eq!(v.relation("r2"), Some(RelationId(2)));
    }

    #[test]
    fn rebuild_indexes_restores_lookup() {
        let v = Vocabulary::synthetic(3, 1);
        let mut stripped = v.clone();
        stripped.entity_index.clear();
        stripped.relation_index.clear();
        stripped.rebuild_indexes();
        assert_eq!(stripped.entity("e2"), v.entity("e2"));
        assert_eq!(stripped.relation("r0"), v.relation("r0"));
    }
}
