//! A benchmark dataset: a vocabulary plus train/validation/test splits.

use crate::{KgError, KnownTriples, Result, Triple, TripleStore, Vocabulary};
use std::collections::HashSet;

/// A knowledge-graph benchmark dataset in the standard three-way split used
/// by the paper's Table 1 (training / validation / test).
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Human-readable dataset name (e.g. `"fb15k237-like"`).
    pub name: String,
    /// Label ↔ id mapping.
    pub vocab: Vocabulary,
    /// Training graph — the `G` the KGE model is trained on and that the
    /// discovery algorithm samples from.
    pub train: TripleStore,
    /// Validation triples (hyperparameter selection, classification thresholds).
    pub valid: Vec<Triple>,
    /// Test triples (link-prediction evaluation).
    pub test: Vec<Triple>,
}

impl Dataset {
    /// Assembles a dataset and checks the split invariants the standard
    /// protocol relies on:
    /// * splits are pairwise disjoint,
    /// * every entity/relation of valid/test occurs in train
    ///   (no unseen entities, as in CoDEx and the LibKGE convention).
    pub fn new(
        name: impl Into<String>,
        vocab: Vocabulary,
        train: TripleStore,
        valid: Vec<Triple>,
        test: Vec<Triple>,
    ) -> Result<Self> {
        let held_out: Vec<(&str, &[Triple])> = vec![("valid", &valid), ("test", &test)];

        let mut seen_entities = vec![false; train.num_entities()];
        let mut seen_relations = vec![false; train.num_relations()];
        for t in train.triples() {
            seen_entities[t.subject.index()] = true;
            seen_entities[t.object.index()] = true;
            seen_relations[t.relation.index()] = true;
        }

        let mut unique: HashSet<Triple> = train.triples().iter().copied().collect();
        for (split, triples) in &held_out {
            for t in *triples {
                if t.subject.index() >= train.num_entities()
                    || t.object.index() >= train.num_entities()
                {
                    return Err(KgError::Invariant(format!(
                        "{split} split references an entity outside the vocabulary"
                    )));
                }
                if !seen_entities[t.subject.index()]
                    || !seen_entities[t.object.index()]
                    || !seen_relations[t.relation.index()]
                {
                    return Err(KgError::Invariant(format!(
                        "{split} split contains an entity/relation unseen in training: {t}"
                    )));
                }
                if !unique.insert(*t) {
                    return Err(KgError::Invariant(format!(
                        "triple {t} appears in more than one split"
                    )));
                }
            }
        }

        Ok(Dataset {
            name: name.into(),
            vocab,
            train,
            valid,
            test,
        })
    }

    /// Total triples across all splits.
    pub fn total_triples(&self) -> usize {
        self.train.len() + self.valid.len() + self.test.len()
    }

    /// The filtered-ranking index over all three splits.
    pub fn known_triples(&self) -> KnownTriples {
        KnownTriples::from_slices([self.train.triples(), &self.valid[..], &self.test[..]])
    }

    /// Table 1-style metadata row.
    pub fn metadata(&self) -> DatasetMetadata {
        DatasetMetadata {
            name: self.name.clone(),
            training: self.train.len(),
            validation: self.valid.len(),
            test: self.test.len(),
            entities: self.train.num_entities(),
            relations: self.train.num_relations(),
        }
    }
}

/// One row of the paper's Table 1.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DatasetMetadata {
    /// Dataset name.
    pub name: String,
    /// Number of training triples.
    pub training: usize,
    /// Number of validation triples.
    pub validation: usize,
    /// Number of test triples.
    pub test: usize,
    /// Number of entities.
    pub entities: usize,
    /// Number of relation types.
    pub relations: usize,
}

impl std::fmt::Display for DatasetMetadata {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<16} {:>9} {:>10} {:>8} {:>8} {:>9}",
            self.name, self.training, self.validation, self.test, self.entities, self.relations
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Vocabulary, TripleStore) {
        let vocab = Vocabulary::synthetic(4, 2);
        let train = TripleStore::new(
            4,
            2,
            vec![
                Triple::new(0u32, 0u32, 1u32),
                Triple::new(1u32, 0u32, 2u32),
                Triple::new(2u32, 1u32, 3u32),
                Triple::new(3u32, 1u32, 0u32),
            ],
        )
        .unwrap();
        (vocab, train)
    }

    #[test]
    fn valid_dataset_constructs() {
        let (vocab, train) = tiny();
        let d = Dataset::new(
            "tiny",
            vocab,
            train,
            vec![Triple::new(0u32, 1u32, 2u32)],
            vec![Triple::new(1u32, 1u32, 3u32)],
        )
        .unwrap();
        assert_eq!(d.total_triples(), 6);
        let meta = d.metadata();
        assert_eq!(meta.entities, 4);
        assert_eq!(meta.relations, 2);
        assert_eq!(meta.training, 4);
    }

    #[test]
    fn overlapping_splits_are_rejected() {
        let (vocab, train) = tiny();
        let dup = train.triples()[0];
        let err = Dataset::new("bad", vocab, train, vec![dup], vec![]);
        assert!(matches!(err, Err(KgError::Invariant(_))));
    }

    #[test]
    fn unseen_entity_in_test_is_rejected() {
        let vocab = Vocabulary::synthetic(5, 1);
        // entity 4 exists in the vocabulary but never in training
        let train = TripleStore::new(5, 1, vec![Triple::new(0u32, 0u32, 1u32)]).unwrap();
        let err = Dataset::new(
            "bad",
            vocab,
            train,
            vec![],
            vec![Triple::new(4u32, 0u32, 0u32)],
        );
        assert!(matches!(err, Err(KgError::Invariant(_))));
    }

    #[test]
    fn known_triples_spans_all_splits() {
        let (vocab, train) = tiny();
        let d = Dataset::new(
            "tiny",
            vocab,
            train,
            vec![Triple::new(0u32, 1u32, 2u32)],
            vec![Triple::new(1u32, 1u32, 3u32)],
        )
        .unwrap();
        let k = d.known_triples();
        assert!(k.contains(&Triple::new(0u32, 1u32, 2u32)));
        assert!(k.contains(&Triple::new(1u32, 1u32, 3u32)));
        assert!(k.contains(&Triple::new(0u32, 0u32, 1u32)));
    }
}
