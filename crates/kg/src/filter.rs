//! Index of *known-true* triples used by the filtered ranking protocol.
//!
//! When ranking a triple against its corruptions, the standard filtered
//! setting (Bordes et al., as adopted by the paper) removes corruptions that
//! are themselves known to be true — in the training, validation, or test
//! split — so a model is not penalized for ranking another true triple high.

use crate::{EntityId, RelationId, Triple};
use std::collections::HashMap;

/// Merged `(s, r) → {o}` and `(r, o) → {s}` maps over any number of splits.
#[derive(Debug, Clone, Default)]
pub struct KnownTriples {
    objects_of: HashMap<(EntityId, RelationId), Vec<EntityId>>,
    subjects_of: HashMap<(RelationId, EntityId), Vec<EntityId>>,
    len: usize,
}

impl KnownTriples {
    /// Builds the index from one or more triple slices (e.g. train+valid+test).
    pub fn from_slices<'a>(slices: impl IntoIterator<Item = &'a [Triple]>) -> Self {
        let mut me = KnownTriples::default();
        for slice in slices {
            for &t in slice {
                me.insert(t);
            }
        }
        me.finish();
        me
    }

    fn insert(&mut self, t: Triple) {
        self.objects_of
            .entry((t.subject, t.relation))
            .or_default()
            .push(t.object);
        self.subjects_of
            .entry((t.relation, t.object))
            .or_default()
            .push(t.subject);
        self.len += 1;
    }

    fn finish(&mut self) {
        for v in self.objects_of.values_mut() {
            v.sort_unstable();
            v.dedup();
        }
        for v in self.subjects_of.values_mut() {
            v.sort_unstable();
            v.dedup();
        }
    }

    /// Known true objects `o` such that `(s, r, o)` is a known triple.
    pub fn true_objects(&self, s: EntityId, r: RelationId) -> &[EntityId] {
        self.objects_of
            .get(&(s, r))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Known true subjects `s` such that `(s, r, o)` is a known triple.
    pub fn true_subjects(&self, r: RelationId, o: EntityId) -> &[EntityId] {
        self.subjects_of
            .get(&(r, o))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// O(log n) membership test.
    pub fn contains(&self, t: &Triple) -> bool {
        self.true_objects(t.subject, t.relation)
            .binary_search(&t.object)
            .is_ok()
    }

    /// Number of (non-distinct) insertions; useful for sanity checks.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if nothing was inserted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_multiple_splits() {
        let train = [Triple::new(0u32, 0u32, 1u32), Triple::new(0u32, 0u32, 2u32)];
        let test = [Triple::new(3u32, 0u32, 2u32)];
        let k = KnownTriples::from_slices([&train[..], &test[..]]);
        assert_eq!(
            k.true_objects(EntityId(0), RelationId(0)),
            &[EntityId(1), EntityId(2)]
        );
        assert_eq!(
            k.true_subjects(RelationId(0), EntityId(2)),
            &[EntityId(0), EntityId(3)]
        );
        assert!(k.contains(&Triple::new(3u32, 0u32, 2u32)));
        assert!(!k.contains(&Triple::new(3u32, 0u32, 1u32)));
    }

    #[test]
    fn duplicate_triples_dedup_in_lookup() {
        let a = [Triple::new(0u32, 0u32, 1u32)];
        let b = [Triple::new(0u32, 0u32, 1u32)];
        let k = KnownTriples::from_slices([&a[..], &b[..]]);
        assert_eq!(k.true_objects(EntityId(0), RelationId(0)).len(), 1);
        assert_eq!(k.len(), 2, "len counts raw insertions");
    }

    #[test]
    fn missing_keys_yield_empty_slices() {
        let k = KnownTriples::from_slices(std::iter::empty::<&[Triple]>());
        assert!(k.is_empty());
        assert!(k.true_objects(EntityId(0), RelationId(0)).is_empty());
        assert!(k.true_subjects(RelationId(0), EntityId(0)).is_empty());
    }
}
