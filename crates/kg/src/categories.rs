//! Relation cardinality categories (1-1 / 1-N / N-1 / N-M), the classic
//! Bordes et al. taxonomy. Cardinality drives which corruption side is
//! informative, which relations admit CHAI-style functionality pruning, and
//! how large the per-relation candidate pools of the discovery algorithm
//! can be.

use crate::{RelationId, TripleStore};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Cardinality class of a relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cardinality {
    /// ≤ ~1 object per subject and ≤ ~1 subject per object.
    OneToOne,
    /// Many objects per subject, ~1 subject per object.
    OneToMany,
    /// ~1 object per subject, many subjects per object.
    ManyToOne,
    /// Many on both sides.
    ManyToMany,
}

impl Cardinality {
    /// Conventional label (`"1-1"`, `"1-N"`, `"N-1"`, `"N-M"`).
    pub fn label(self) -> &'static str {
        match self {
            Cardinality::OneToOne => "1-1",
            Cardinality::OneToMany => "1-N",
            Cardinality::ManyToOne => "N-1",
            Cardinality::ManyToMany => "N-M",
        }
    }
}

impl std::fmt::Display for Cardinality {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Cardinality statistics of one relation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RelationCardinality {
    /// The relation.
    pub relation: RelationId,
    /// Mean objects per distinct subject.
    pub objects_per_subject: f64,
    /// Mean subjects per distinct object.
    pub subjects_per_object: f64,
    /// The class under the Bordes et al. 1.5 threshold.
    pub category: Cardinality,
}

/// Classifies every used relation of `store` (threshold 1.5, the Bordes
/// et al. convention). Returned in ascending relation order.
pub fn relation_cardinalities(store: &TripleStore) -> Vec<RelationCardinality> {
    store
        .used_relations()
        .into_iter()
        .map(|r| {
            let triples = store.triples_of_relation(r);
            let mut per_subject: HashMap<u32, usize> = HashMap::new();
            let mut per_object: HashMap<u32, usize> = HashMap::new();
            for t in triples {
                *per_subject.entry(t.subject.0).or_default() += 1;
                *per_object.entry(t.object.0).or_default() += 1;
            }
            let ops = triples.len() as f64 / per_subject.len().max(1) as f64;
            let spo = triples.len() as f64 / per_object.len().max(1) as f64;
            let category = match (ops > 1.5, spo > 1.5) {
                (false, false) => Cardinality::OneToOne,
                (true, false) => Cardinality::OneToMany,
                (false, true) => Cardinality::ManyToOne,
                (true, true) => Cardinality::ManyToMany,
            };
            RelationCardinality {
                relation: r,
                objects_per_subject: ops,
                subjects_per_object: spo,
                category,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Triple;

    #[test]
    fn classifies_all_four_categories() {
        // r0 (1-1): 0→1, 2→3
        // r1 (1-N): 0→{1,2,3}
        // r2 (N-1): {1,2,3}→0
        // r3 (N-M): {0,1}×{2,3}
        let store = TripleStore::new(
            4,
            4,
            vec![
                Triple::new(0u32, 0u32, 1u32),
                Triple::new(2u32, 0u32, 3u32),
                Triple::new(0u32, 1u32, 1u32),
                Triple::new(0u32, 1u32, 2u32),
                Triple::new(0u32, 1u32, 3u32),
                Triple::new(1u32, 2u32, 0u32),
                Triple::new(2u32, 2u32, 0u32),
                Triple::new(3u32, 2u32, 0u32),
                Triple::new(0u32, 3u32, 2u32),
                Triple::new(0u32, 3u32, 3u32),
                Triple::new(1u32, 3u32, 2u32),
                Triple::new(1u32, 3u32, 3u32),
            ],
        )
        .unwrap();
        let cats = relation_cardinalities(&store);
        assert_eq!(cats.len(), 4);
        assert_eq!(cats[0].category, Cardinality::OneToOne);
        assert_eq!(cats[1].category, Cardinality::OneToMany);
        assert_eq!(cats[2].category, Cardinality::ManyToOne);
        assert_eq!(cats[3].category, Cardinality::ManyToMany);
    }

    #[test]
    fn averages_match_hand_computation() {
        let store = TripleStore::new(
            3,
            1,
            vec![
                Triple::new(0u32, 0u32, 1u32),
                Triple::new(0u32, 0u32, 2u32),
                Triple::new(1u32, 0u32, 2u32),
            ],
        )
        .unwrap();
        let c = &relation_cardinalities(&store)[0];
        // 3 triples, 2 subjects → 1.5 objects/subject; 2 objects → 1.5.
        assert!((c.objects_per_subject - 1.5).abs() < 1e-12);
        assert!((c.subjects_per_object - 1.5).abs() < 1e-12);
        assert_eq!(c.category, Cardinality::OneToOne, "threshold is strict >");
    }

    #[test]
    fn unused_relations_are_omitted() {
        let store = TripleStore::new(2, 3, vec![Triple::new(0u32, 1u32, 1u32)]).unwrap();
        let cats = relation_cardinalities(&store);
        assert_eq!(cats.len(), 1);
        assert_eq!(cats[0].relation, RelationId(1));
    }

    #[test]
    fn labels_are_conventional() {
        assert_eq!(Cardinality::OneToMany.to_string(), "1-N");
        assert_eq!(Cardinality::ManyToMany.label(), "N-M");
    }
}
