//! Compact integer identifiers for entities and relations.
//!
//! Knowledge graphs at benchmark scale (10⁴–10⁵ entities, 10⁶ triples) are
//! manipulated as dense integer ids rather than strings. Both id types are
//! `u32` newtypes, which keeps a [`crate::Triple`] at 12 bytes and lets
//! per-entity statistics live in flat `Vec`s indexed by id.

use serde::{Deserialize, Serialize};

/// Identifier of an entity (a node of the knowledge graph).
///
/// Ids are dense: a graph with `N` entities uses exactly the ids `0..N`,
/// which is guaranteed by [`crate::Vocabulary`] interning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct EntityId(pub u32);

/// Identifier of a relation type (an edge label of the knowledge graph).
///
/// Dense in `0..K` for a graph with `K` relation types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct RelationId(pub u32);

impl EntityId {
    /// The id as a `usize`, for indexing flat per-entity arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl RelationId {
    /// The id as a `usize`, for indexing flat per-relation arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for EntityId {
    #[inline]
    fn from(v: u32) -> Self {
        EntityId(v)
    }
}

impl From<u32> for RelationId {
    #[inline]
    fn from(v: u32) -> Self {
        RelationId(v)
    }
}

impl std::fmt::Display for EntityId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl std::fmt::Display for RelationId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entity_id_roundtrips_through_index() {
        let id = EntityId(42);
        assert_eq!(id.index(), 42);
        assert_eq!(EntityId::from(42u32), id);
    }

    #[test]
    fn relation_id_roundtrips_through_index() {
        let id = RelationId(7);
        assert_eq!(id.index(), 7);
        assert_eq!(RelationId::from(7u32), id);
    }

    #[test]
    fn ids_order_by_numeric_value() {
        assert!(EntityId(1) < EntityId(2));
        assert!(RelationId(0) < RelationId(10));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(EntityId(3).to_string(), "e3");
        assert_eq!(RelationId(3).to_string(), "r3");
    }

    #[test]
    fn ids_are_small() {
        assert_eq!(std::mem::size_of::<EntityId>(), 4);
        assert_eq!(std::mem::size_of::<RelationId>(), 4);
    }
}
