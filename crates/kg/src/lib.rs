//! # kgfd-kg — knowledge graph substrate
//!
//! The foundation shared by every crate of the `fact-discovery` workspace:
//! compact triple representation, interned vocabularies, an indexed
//! [`TripleStore`], benchmark-style [`Dataset`] splits, the filtered-ranking
//! [`KnownTriples`] index, and TSV i/o.
//!
//! All graph algorithms in the workspace operate on dense integer ids
//! ([`EntityId`], [`RelationId`]); the [`Vocabulary`] keeps labels.
//!
//! ```
//! use kgfd_kg::{Triple, TripleStore};
//!
//! let store = TripleStore::new(3, 1, vec![
//!     Triple::new(0u32, 0u32, 1u32),
//!     Triple::new(1u32, 0u32, 2u32),
//! ]).unwrap();
//! assert_eq!(store.len(), 2);
//! assert!(store.contains(&Triple::new(0u32, 0u32, 1u32)));
//! // Candidate space of exhaustive fact discovery:
//! assert_eq!(store.complement_size(), 3 * 3 * 1 - 2);
//! ```

#![warn(missing_docs)]

mod categories;
mod error;
mod filter;
mod ids;
mod io;
mod pattern;
mod split;
mod store;
mod triple;
mod vocab;

pub use categories::{relation_cardinalities, Cardinality, RelationCardinality};
pub use error::{KgError, Result};
pub use filter::KnownTriples;
pub use ids::{EntityId, RelationId};
pub use io::{read_triples_tsv, write_triples_tsv};
pub use pattern::TriplePattern;
pub use split::{Dataset, DatasetMetadata};
pub use store::{SideIndex, TripleStore};
pub use triple::{Side, Triple};
pub use vocab::Vocabulary;
