//! Error type shared by the knowledge-graph substrate.

/// Errors raised while constructing, indexing, or (de)serializing graphs.
#[derive(Debug)]
pub enum KgError {
    /// An entity id was outside the vocabulary's dense range.
    UnknownEntity(u32),
    /// A relation id was outside the vocabulary's dense range.
    UnknownRelation(u32),
    /// A text line could not be parsed as a `subject\trelation\tobject` triple.
    MalformedLine {
        /// 1-based line number in the input.
        line: usize,
        /// The offending content (truncated).
        content: String,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A structural invariant was violated (duplicate split member, empty graph, …).
    Invariant(String),
    /// A persisted artifact failed an integrity check: bad magic, checksum
    /// mismatch, truncation, trailing bytes, or a shape that contradicts its
    /// own header. The artifact must not be trusted.
    Corrupt(String),
    /// A persisted artifact declares a format version this build cannot read.
    UnsupportedVersion {
        /// Version byte found in the artifact.
        found: u8,
        /// Highest version this build understands.
        max_supported: u8,
    },
    /// A persisted artifact is structurally readable but cannot be migrated
    /// to the current format safely (e.g. a v1 TransE file whose distance
    /// flag is untrustworthy); the artifact must be regenerated.
    Migration(String),
    /// A training checkpoint was written under a different training
    /// configuration than the one it is being resumed with. Resuming would
    /// silently train a *different* run (other hyperparameters, other RNG
    /// streams), so the mismatch is refused; delete the checkpoints or
    /// restore the original configuration.
    CheckpointMismatch {
        /// Fingerprint of the configuration the resume was requested with.
        expected: u64,
        /// Fingerprint stored in the checkpoint file.
        found: u64,
    },
    /// A model score used for threshold tuning was NaN or infinite. A
    /// non-finite score would silently scramble the threshold search (NaN
    /// is unordered), so it is rejected loudly instead.
    NonFiniteScore {
        /// Position of the first non-finite score.
        index: usize,
        /// The offending value (NaN, +∞, or −∞).
        value: f64,
    },
    /// A worker thread panicked while running a parallel job (training
    /// shard, discovery relation, ranking chunk). The panic is caught at
    /// the pool boundary and surfaced as this typed error instead of
    /// hanging the dispatcher or aborting the process; the payload is
    /// rendered into the message.
    WorkerPanic(String),
    /// A cooperative deadline expired mid-run: the operation checked its
    /// time budget at a safe boundary (a streaming chunk, a queued serve
    /// request) and stopped there instead of consuming workers past its
    /// deadline. Partial results are discarded — the caller either retries
    /// with a larger budget or reports the timeout.
    DeadlineExceeded,
    /// A sampling-weight vector contained a NaN or infinite entry. Rejected
    /// loudly: a NaN weight would otherwise poison CDF/alias-table
    /// construction silently (NaN propagates into the running total, which
    /// then falls back to the uniform distribution without any indication
    /// that the caller's weights were discarded).
    NonFiniteWeight {
        /// Position of the first non-finite entry in the weight vector.
        index: usize,
        /// The offending value (NaN, +∞, or −∞).
        value: f64,
    },
}

impl std::fmt::Display for KgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KgError::UnknownEntity(id) => write!(f, "unknown entity id {id}"),
            KgError::UnknownRelation(id) => write!(f, "unknown relation id {id}"),
            KgError::MalformedLine { line, content } => {
                write!(f, "malformed triple at line {line}: {content:?}")
            }
            KgError::Io(e) => write!(f, "i/o error: {e}"),
            KgError::Invariant(msg) => write!(f, "invariant violation: {msg}"),
            KgError::Corrupt(msg) => write!(f, "corrupt artifact: {msg}"),
            KgError::UnsupportedVersion {
                found,
                max_supported,
            } => write!(
                f,
                "unsupported format version {found} (this build reads up to v{max_supported})"
            ),
            KgError::Migration(msg) => write!(f, "migration required: {msg}"),
            KgError::CheckpointMismatch { expected, found } => write!(
                f,
                "checkpoint belongs to a different training configuration \
                 (fingerprint {found:#018x}, expected {expected:#018x}); \
                 refusing to resume"
            ),
            KgError::NonFiniteScore { index, value } => write!(
                f,
                "non-finite score {value} at index {index}; scores must be finite"
            ),
            KgError::WorkerPanic(msg) => write!(f, "worker panicked: {msg}"),
            KgError::DeadlineExceeded => {
                write!(
                    f,
                    "deadline exceeded: run stopped at a cooperative checkpoint"
                )
            }
            KgError::NonFiniteWeight { index, value } => write!(
                f,
                "non-finite sampling weight {value} at index {index}; weights must be finite"
            ),
        }
    }
}

impl std::error::Error for KgError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KgError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for KgError {
    fn from(e: std::io::Error) -> Self {
        KgError::Io(e)
    }
}

/// Convenience alias used across the substrate crates.
pub type Result<T> = std::result::Result<T, KgError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(KgError::UnknownEntity(9).to_string().contains('9'));
        assert!(KgError::MalformedLine {
            line: 3,
            content: "x".into()
        }
        .to_string()
        .contains("line 3"));
        assert!(KgError::Invariant("empty".into())
            .to_string()
            .contains("empty"));
    }

    #[test]
    fn persistence_variants_render_their_context() {
        assert!(KgError::Corrupt("checksum mismatch".into())
            .to_string()
            .contains("checksum mismatch"));
        let v = KgError::UnsupportedVersion {
            found: 9,
            max_supported: 2,
        }
        .to_string();
        assert!(v.contains('9') && v.contains("v2"), "{v}");
        assert!(KgError::Migration("retrain".into())
            .to_string()
            .contains("retrain"));
    }

    #[test]
    fn checkpoint_mismatch_names_both_fingerprints() {
        let msg = KgError::CheckpointMismatch {
            expected: 0xAB,
            found: 0xCD,
        }
        .to_string();
        assert!(msg.contains("0x00000000000000cd"), "{msg}");
        assert!(msg.contains("0x00000000000000ab"), "{msg}");
        assert!(msg.contains("refusing"), "{msg}");
    }

    #[test]
    fn non_finite_score_names_the_offender() {
        let msg = KgError::NonFiniteScore {
            index: 5,
            value: f64::NAN,
        }
        .to_string();
        assert!(msg.contains("index 5") && msg.contains("NaN"), "{msg}");
    }

    #[test]
    fn non_finite_weight_names_the_offender() {
        let msg = KgError::NonFiniteWeight {
            index: 3,
            value: f64::NAN,
        }
        .to_string();
        assert!(msg.contains("index 3") && msg.contains("NaN"), "{msg}");
    }

    #[test]
    fn deadline_exceeded_reads_as_a_timeout() {
        let msg = KgError::DeadlineExceeded.to_string();
        assert!(msg.contains("deadline"), "{msg}");
    }

    #[test]
    fn io_error_preserves_source() {
        let e: KgError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
