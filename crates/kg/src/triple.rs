//! The `(subject, relation, object)` triple — the atom of a knowledge graph.

use crate::{EntityId, RelationId};
use serde::{Deserialize, Serialize};

/// A directed, labeled edge `(s, r, o)` of a knowledge graph.
///
/// Ordering is lexicographic on `(relation, subject, object)`, which groups
/// triples of the same relation together — the layout the per-relation
/// indexes of [`crate::TripleStore`] rely on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Triple {
    /// Subject (head) entity.
    pub subject: EntityId,
    /// Relation type.
    pub relation: RelationId,
    /// Object (tail) entity.
    pub object: EntityId,
}

impl Triple {
    /// Creates a triple from raw ids.
    #[inline]
    pub fn new(
        subject: impl Into<EntityId>,
        relation: impl Into<RelationId>,
        object: impl Into<EntityId>,
    ) -> Self {
        Triple {
            subject: subject.into(),
            relation: relation.into(),
            object: object.into(),
        }
    }

    /// The triple with subject and object swapped and relation `r` replaced —
    /// used when reasoning about inverse-relation test leakage.
    #[inline]
    pub fn inverted_as(self, relation: RelationId) -> Self {
        Triple {
            subject: self.object,
            relation,
            object: self.subject,
        }
    }

    /// Returns the triple with the subject replaced (a "subject corruption").
    #[inline]
    pub fn with_subject(self, subject: EntityId) -> Self {
        Triple { subject, ..self }
    }

    /// Returns the triple with the object replaced (an "object corruption").
    #[inline]
    pub fn with_object(self, object: EntityId) -> Self {
        Triple { object, ..self }
    }

    /// `true` if the triple is a self-loop (`s == o`).
    #[inline]
    pub fn is_loop(self) -> bool {
        self.subject == self.object
    }

    /// Sort key grouping by relation first.
    #[inline]
    fn key(self) -> (u32, u32, u32) {
        (self.relation.0, self.subject.0, self.object.0)
    }
}

impl PartialOrd for Triple {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Triple {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

impl std::fmt::Display for Triple {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {}, {})", self.subject, self.relation, self.object)
    }
}

/// Which side of a triple an entity occupies. The paper's ENTITY FREQUENCY
/// and UNIFORM RANDOM strategies keep subject- and object-side weights
/// separate; this enum names the side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Side {
    /// The subject (head) position.
    Subject,
    /// The object (tail) position.
    Object,
}

impl Side {
    /// Both sides, in a fixed order.
    pub const BOTH: [Side; 2] = [Side::Subject, Side::Object];

    /// The opposite side.
    #[inline]
    pub fn opposite(self) -> Side {
        match self {
            Side::Subject => Side::Object,
            Side::Object => Side::Subject,
        }
    }

    /// The entity of `t` on this side.
    #[inline]
    pub fn of(self, t: Triple) -> EntityId {
        match self {
            Side::Subject => t.subject,
            Side::Object => t.object,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_accepts_raw_u32() {
        let t = Triple::new(1u32, 2u32, 3u32);
        assert_eq!(t.subject, EntityId(1));
        assert_eq!(t.relation, RelationId(2));
        assert_eq!(t.object, EntityId(3));
    }

    #[test]
    fn ordering_groups_by_relation() {
        let a = Triple::new(9u32, 0u32, 9u32);
        let b = Triple::new(0u32, 1u32, 0u32);
        assert!(a < b, "relation dominates the sort key");
    }

    #[test]
    fn corruption_constructors_replace_one_side() {
        let t = Triple::new(1u32, 2u32, 3u32);
        assert_eq!(t.with_subject(EntityId(7)), Triple::new(7u32, 2u32, 3u32));
        assert_eq!(t.with_object(EntityId(7)), Triple::new(1u32, 2u32, 7u32));
    }

    #[test]
    fn inverted_as_swaps_entities() {
        let t = Triple::new(1u32, 2u32, 3u32);
        let inv = t.inverted_as(RelationId(5));
        assert_eq!(inv, Triple::new(3u32, 5u32, 1u32));
    }

    #[test]
    fn side_selects_entity() {
        let t = Triple::new(1u32, 2u32, 3u32);
        assert_eq!(Side::Subject.of(t), EntityId(1));
        assert_eq!(Side::Object.of(t), EntityId(3));
        assert_eq!(Side::Subject.opposite(), Side::Object);
    }

    #[test]
    fn loop_detection() {
        assert!(Triple::new(4u32, 0u32, 4u32).is_loop());
        assert!(!Triple::new(4u32, 0u32, 5u32).is_loop());
    }

    #[test]
    fn triple_is_twelve_bytes() {
        assert_eq!(std::mem::size_of::<Triple>(), 12);
    }
}
