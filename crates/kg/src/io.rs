//! Text (TSV) serialization of triples in the `subject\trelation\tobject`
//! format used by FB15K-237 / WN18RR / CoDEx distribution files.

use crate::{KgError, Result, Triple, Vocabulary};
use std::io::{BufRead, BufReader, Read, Write};

/// Parses TSV lines into triples, interning labels into `vocab`.
///
/// Empty lines are skipped; lines with fewer or more than three tab-separated
/// fields are an error carrying the 1-based line number.
pub fn read_triples_tsv(reader: impl Read, vocab: &mut Vocabulary) -> Result<Vec<Triple>> {
    let reader = BufReader::new(reader);
    let mut triples = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let mut fields = line.split('\t');
        let (s, r, o) = match (fields.next(), fields.next(), fields.next(), fields.next()) {
            (Some(s), Some(r), Some(o), None) => (s, r, o),
            _ => {
                return Err(KgError::MalformedLine {
                    line: i + 1,
                    content: line.chars().take(80).collect(),
                })
            }
        };
        triples.push(Triple {
            subject: vocab.intern_entity(s.trim()),
            relation: vocab.intern_relation(r.trim()),
            object: vocab.intern_entity(o.trim()),
        });
    }
    Ok(triples)
}

/// Writes triples as TSV using labels from `vocab`. Ids without a label are
/// an error — that indicates a vocabulary/store mismatch.
pub fn write_triples_tsv(
    mut writer: impl Write,
    triples: &[Triple],
    vocab: &Vocabulary,
) -> Result<()> {
    for t in triples {
        let s = vocab
            .entity_label(t.subject)
            .ok_or(KgError::UnknownEntity(t.subject.0))?;
        let r = vocab
            .relation_label(t.relation)
            .ok_or(KgError::UnknownRelation(t.relation.0))?;
        let o = vocab
            .entity_label(t.object)
            .ok_or(KgError::UnknownEntity(t.object.0))?;
        writeln!(writer, "{s}\t{r}\t{o}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EntityId, RelationId};

    #[test]
    fn parses_and_interns() {
        let input = "alice\tknows\tbob\nbob\tknows\tcarol\n\nalice\tlikes\tcarol\n";
        let mut vocab = Vocabulary::new();
        let triples = read_triples_tsv(input.as_bytes(), &mut vocab).unwrap();
        assert_eq!(triples.len(), 3);
        assert_eq!(vocab.num_entities(), 3);
        assert_eq!(vocab.num_relations(), 2);
        assert_eq!(triples[0].subject, EntityId(0));
        assert_eq!(triples[1].relation, RelationId(0));
    }

    #[test]
    fn malformed_line_reports_position() {
        let input = "a\tb\tc\nbroken line\n";
        let mut vocab = Vocabulary::new();
        let err = read_triples_tsv(input.as_bytes(), &mut vocab).unwrap_err();
        match err {
            KgError::MalformedLine { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn too_many_fields_is_malformed() {
        let input = "a\tb\tc\td\n";
        let mut vocab = Vocabulary::new();
        assert!(read_triples_tsv(input.as_bytes(), &mut vocab).is_err());
    }

    #[test]
    fn roundtrip_preserves_triples() {
        let input = "alice\tknows\tbob\nbob\tlikes\tcarol\n";
        let mut vocab = Vocabulary::new();
        let triples = read_triples_tsv(input.as_bytes(), &mut vocab).unwrap();
        let mut out = Vec::new();
        write_triples_tsv(&mut out, &triples, &vocab).unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), input);
    }

    #[test]
    fn writing_unknown_id_fails() {
        let vocab = Vocabulary::new();
        let t = [Triple::new(0u32, 0u32, 0u32)];
        assert!(write_triples_tsv(Vec::new(), &t, &vocab).is_err());
    }
}
