//! The in-memory triple store with the indexes every downstream crate needs.
//!
//! Layout: triples are kept sorted by `(relation, subject, object)` with a
//! CSR-style offset table over relations, so "all triples of relation r" is a
//! contiguous slice. Membership is a hash set; per-relation unique
//! subject/object lists and per-side frequency counts are precomputed because
//! the sampling strategies of the paper (Section 3.1.2) consume them directly.

use crate::{EntityId, KgError, RelationId, Result, Side, Triple};
use std::collections::HashSet;

/// Unique entities appearing on one side of one relation, with their
/// occurrence counts. This is exactly the input of the paper's
/// `compute_weights()` for the side-aware strategies.
#[derive(Debug, Clone, Default)]
pub struct SideIndex {
    /// Distinct entities on this side, ascending by id.
    pub entities: Vec<EntityId>,
    /// `counts[i]` = number of triples in which `entities[i]` occupies this side.
    pub counts: Vec<u32>,
}

impl SideIndex {
    /// Number of distinct entities on this side.
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    /// `true` if no entity ever appears on this side.
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }

    /// Total number of occurrences (equals the relation's triple count).
    pub fn total_count(&self) -> u64 {
        self.counts.iter().map(|&c| c as u64).sum()
    }
}

/// An immutable, fully indexed knowledge graph.
#[derive(Debug, Clone)]
pub struct TripleStore {
    num_entities: usize,
    num_relations: usize,
    /// All triples, sorted by `(relation, subject, object)`, deduplicated.
    triples: Vec<Triple>,
    /// `relation_offsets[r]..relation_offsets[r+1]` delimits relation `r`'s slice.
    relation_offsets: Vec<usize>,
    membership: HashSet<Triple>,
    /// Per-relation subject-side index.
    subjects: Vec<SideIndex>,
    /// Per-relation object-side index.
    objects: Vec<SideIndex>,
    /// Content hash over the declared shape and the sorted triple list,
    /// computed once at construction (see [`TripleStore::fingerprint`]).
    fingerprint: u64,
}

impl TripleStore {
    /// Builds a store from triples. Duplicates are removed; ids are validated
    /// against the declared entity/relation counts.
    pub fn new(
        num_entities: usize,
        num_relations: usize,
        mut triples: Vec<Triple>,
    ) -> Result<Self> {
        for t in &triples {
            if t.subject.index() >= num_entities {
                return Err(KgError::UnknownEntity(t.subject.0));
            }
            if t.object.index() >= num_entities {
                return Err(KgError::UnknownEntity(t.object.0));
            }
            if t.relation.index() >= num_relations {
                return Err(KgError::UnknownRelation(t.relation.0));
            }
        }
        triples.sort_unstable();
        triples.dedup();

        let membership: HashSet<Triple> = triples.iter().copied().collect();

        let mut relation_offsets = Vec::with_capacity(num_relations + 1);
        relation_offsets.push(0);
        let mut cursor = 0usize;
        for r in 0..num_relations {
            while cursor < triples.len() && triples[cursor].relation.index() == r {
                cursor += 1;
            }
            relation_offsets.push(cursor);
        }

        let mut subjects = Vec::with_capacity(num_relations);
        let mut objects = Vec::with_capacity(num_relations);
        for r in 0..num_relations {
            let slice = &triples[relation_offsets[r]..relation_offsets[r + 1]];
            subjects.push(build_side_index(slice, Side::Subject));
            objects.push(build_side_index(slice, Side::Object));
        }

        let fingerprint = fingerprint_of(num_entities, num_relations, &triples);

        Ok(TripleStore {
            num_entities,
            num_relations,
            triples,
            relation_offsets,
            membership,
            subjects,
            objects,
            fingerprint,
        })
    }

    /// Number of entities in the vocabulary (not just those used in triples).
    #[inline]
    pub fn num_entities(&self) -> usize {
        self.num_entities
    }

    /// Number of relation types in the vocabulary.
    #[inline]
    pub fn num_relations(&self) -> usize {
        self.num_relations
    }

    /// Total number of (distinct) triples, `M = |G|` in the paper.
    #[inline]
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// `true` if the graph holds no triples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// O(1) membership test.
    #[inline]
    pub fn contains(&self, t: &Triple) -> bool {
        self.membership.contains(t)
    }

    /// All triples, sorted by `(relation, subject, object)`.
    #[inline]
    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    /// The contiguous slice of triples with relation `r`.
    pub fn triples_of_relation(&self, r: RelationId) -> &[Triple] {
        let i = r.index();
        &self.triples[self.relation_offsets[i]..self.relation_offsets[i + 1]]
    }

    /// Relations that actually occur in at least one triple, ascending.
    pub fn used_relations(&self) -> Vec<RelationId> {
        (0..self.num_relations)
            .filter(|&r| self.relation_offsets[r + 1] > self.relation_offsets[r])
            .map(|r| RelationId(r as u32))
            .collect()
    }

    /// Subject-side index (unique entities + counts) of relation `r`.
    pub fn subject_index(&self, r: RelationId) -> &SideIndex {
        &self.subjects[r.index()]
    }

    /// Object-side index (unique entities + counts) of relation `r`.
    pub fn object_index(&self, r: RelationId) -> &SideIndex {
        &self.objects[r.index()]
    }

    /// Side index of relation `r` on the given side.
    pub fn side_index(&self, r: RelationId, side: Side) -> &SideIndex {
        match side {
            Side::Subject => self.subject_index(r),
            Side::Object => self.object_index(r),
        }
    }

    /// Occurrence count of each entity across the whole graph on the given
    /// side (graph-global, unlike the per-relation [`SideIndex`]).
    pub fn global_side_counts(&self, side: Side) -> Vec<u32> {
        let mut counts = vec![0u32; self.num_entities];
        for t in &self.triples {
            counts[side.of(*t).index()] += 1;
        }
        counts
    }

    /// A stable 64-bit content hash of this graph: the declared
    /// entity/relation counts plus every (sorted, deduplicated) triple.
    /// Two stores built from the same logical graph — regardless of input
    /// triple order or duplicates — share a fingerprint, so it can key
    /// caches of graph-derived artifacts (e.g. strategy weight tables)
    /// across discovery runs. Independent of any ambient hasher
    /// randomisation; computed once at construction.
    #[inline]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Size of the complement graph `|E|² × |R| − |G|`, the candidate space an
    /// exhaustive fact-discovery approach would have to enumerate (paper §1).
    pub fn complement_size(&self) -> u128 {
        let n = self.num_entities as u128;
        let k = self.num_relations as u128;
        n * n * k - self.triples.len() as u128
    }
}

/// splitmix64-style mixing over the store's canonical content. Seedless and
/// layout-stable, so fingerprints are comparable across processes and runs.
fn fingerprint_of(num_entities: usize, num_relations: usize, triples: &[Triple]) -> u64 {
    fn mix(state: u64, v: u64) -> u64 {
        let mut z = state
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(v.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    let mut h = mix(0x6B67_6664_5F6B_6721, num_entities as u64);
    h = mix(h, num_relations as u64);
    h = mix(h, triples.len() as u64);
    for t in triples {
        let packed =
            ((t.relation.0 as u64) << 42) ^ ((t.subject.0 as u64) << 21) ^ (t.object.0 as u64);
        h = mix(h, packed);
    }
    h
}

fn build_side_index(slice: &[Triple], side: Side) -> SideIndex {
    let mut ids: Vec<EntityId> = slice.iter().map(|t| side.of(*t)).collect();
    ids.sort_unstable();
    let mut entities = Vec::new();
    let mut counts = Vec::new();
    for id in ids {
        if entities.last() == Some(&id) {
            *counts.last_mut().expect("counts parallel to entities") += 1;
        } else {
            entities.push(id);
            counts.push(1);
        }
    }
    SideIndex { entities, counts }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> TripleStore {
        // 4 entities, 2 relations.
        // r0: (0,0,1), (0,0,2), (1,0,2)
        // r1: (2,1,3)
        TripleStore::new(
            4,
            2,
            vec![
                Triple::new(0u32, 0u32, 1u32),
                Triple::new(0u32, 0u32, 2u32),
                Triple::new(1u32, 0u32, 2u32),
                Triple::new(2u32, 1u32, 3u32),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_ids() {
        let err = TripleStore::new(2, 1, vec![Triple::new(5u32, 0u32, 0u32)]);
        assert!(matches!(err, Err(KgError::UnknownEntity(5))));
        let err = TripleStore::new(2, 1, vec![Triple::new(0u32, 3u32, 0u32)]);
        assert!(matches!(err, Err(KgError::UnknownRelation(3))));
    }

    #[test]
    fn duplicates_are_removed() {
        let s = TripleStore::new(
            2,
            1,
            vec![Triple::new(0u32, 0u32, 1u32), Triple::new(0u32, 0u32, 1u32)],
        )
        .unwrap();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn membership_and_slices() {
        let s = store();
        assert!(s.contains(&Triple::new(1u32, 0u32, 2u32)));
        assert!(!s.contains(&Triple::new(1u32, 0u32, 3u32)));
        assert_eq!(s.triples_of_relation(RelationId(0)).len(), 3);
        assert_eq!(s.triples_of_relation(RelationId(1)).len(), 1);
    }

    #[test]
    fn side_indexes_count_occurrences() {
        let s = store();
        let subj = s.subject_index(RelationId(0));
        assert_eq!(subj.entities, vec![EntityId(0), EntityId(1)]);
        assert_eq!(subj.counts, vec![2, 1]);
        assert_eq!(subj.total_count(), 3);

        let obj = s.object_index(RelationId(0));
        assert_eq!(obj.entities, vec![EntityId(1), EntityId(2)]);
        assert_eq!(obj.counts, vec![1, 2]);
    }

    #[test]
    fn global_side_counts_cover_all_relations() {
        let s = store();
        let subj = s.global_side_counts(Side::Subject);
        assert_eq!(subj, vec![2, 1, 1, 0]);
        let obj = s.global_side_counts(Side::Object);
        assert_eq!(obj, vec![0, 1, 2, 1]);
    }

    #[test]
    fn used_relations_skips_empty() {
        let s = TripleStore::new(2, 3, vec![Triple::new(0u32, 2u32, 1u32)]).unwrap();
        assert_eq!(s.used_relations(), vec![RelationId(2)]);
    }

    #[test]
    fn complement_size_matches_formula() {
        let s = store();
        // 4² × 2 − 4 = 28
        assert_eq!(s.complement_size(), 28);
    }

    #[test]
    fn fingerprint_is_stable_under_input_order_and_duplicates() {
        let triples = vec![
            Triple::new(0u32, 0u32, 1u32),
            Triple::new(0u32, 0u32, 2u32),
            Triple::new(1u32, 0u32, 2u32),
            Triple::new(2u32, 1u32, 3u32),
        ];
        let mut shuffled = triples.clone();
        shuffled.reverse();
        let mut with_dup = triples.clone();
        with_dup.push(triples[0]);
        let a = TripleStore::new(4, 2, triples).unwrap();
        let b = TripleStore::new(4, 2, shuffled).unwrap();
        let c = TripleStore::new(4, 2, with_dup).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_content_and_shape() {
        let base = store();
        let mut fewer = base.triples().to_vec();
        fewer.pop();
        let smaller = TripleStore::new(4, 2, fewer).unwrap();
        assert_ne!(base.fingerprint(), smaller.fingerprint());

        // Same triples, different declared vocabulary shape.
        let wider = TripleStore::new(5, 2, base.triples().to_vec()).unwrap();
        assert_ne!(base.fingerprint(), wider.fingerprint());

        // The empty graph still has a fingerprint.
        let empty = TripleStore::new(0, 0, vec![]).unwrap();
        assert_ne!(empty.fingerprint(), base.fingerprint());
    }

    #[test]
    fn yago_scale_complement_matches_paper_claim() {
        // Paper §1: YAGO3-10 with ~120K entities, 37 relations → ~533 × 10⁹ edges.
        let s = TripleStore::new(123_182, 37, vec![]).unwrap();
        let c = s.complement_size();
        assert!(c > 530_000_000_000 && c < 570_000_000_000, "got {c}");
    }
}
