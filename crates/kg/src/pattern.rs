//! Triple-pattern matching: `(s?, r?, o?)` lookups over a [`TripleStore`].
//!
//! The store's sort order `(relation, subject, object)` makes patterns that
//! bind the relation — and optionally the subject — range scans; other
//! shapes fall back to filtered scans of the relevant slices. This is the
//! query primitive behind the CLI and the analysis tooling; the complexity
//! of each shape is documented on [`TriplePattern::matches`].

use crate::{EntityId, RelationId, Triple, TripleStore};

/// A triple pattern with optionally bound positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TriplePattern {
    /// Bound subject, if any.
    pub subject: Option<EntityId>,
    /// Bound relation, if any.
    pub relation: Option<RelationId>,
    /// Bound object, if any.
    pub object: Option<EntityId>,
}

impl TriplePattern {
    /// The unconstrained pattern `(?, ?, ?)`.
    pub fn any() -> Self {
        TriplePattern::default()
    }

    /// Binds the subject.
    pub fn with_subject(mut self, s: EntityId) -> Self {
        self.subject = Some(s);
        self
    }

    /// Binds the relation.
    pub fn with_relation(mut self, r: RelationId) -> Self {
        self.relation = Some(r);
        self
    }

    /// Binds the object.
    pub fn with_object(mut self, o: EntityId) -> Self {
        self.object = Some(o);
        self
    }

    /// `true` if `t` satisfies every bound position.
    #[inline]
    pub fn accepts(&self, t: &Triple) -> bool {
        self.subject.is_none_or(|s| t.subject == s)
            && self.relation.is_none_or(|r| t.relation == r)
            && self.object.is_none_or(|o| t.object == o)
    }

    /// All triples of `store` matching the pattern, in store order.
    ///
    /// Cost: `(r, s, ·)` and `(r, s, o)` are binary-searched range scans
    /// within the relation slice; `(r, ·, ·)` and `(r, ·, o)` scan one
    /// relation slice; patterns without a bound relation scan the store.
    pub fn matches<'a>(&self, store: &'a TripleStore) -> Vec<&'a Triple> {
        let slice: &[Triple] = match self.relation {
            Some(r) => store.triples_of_relation(r),
            None => store.triples(),
        };
        let slice = match (self.relation, self.subject) {
            (Some(_), Some(s)) => {
                // Within a relation slice, triples are sorted by subject:
                // narrow to the subject's sub-range.
                let start = slice.partition_point(|t| t.subject < s);
                let end = slice.partition_point(|t| t.subject <= s);
                &slice[start..end]
            }
            _ => slice,
        };
        slice.iter().filter(|t| self.accepts(t)).collect()
    }

    /// Number of matches (same costs as [`matches`](Self::matches)).
    pub fn count(&self, store: &TripleStore) -> usize {
        self.matches(store).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> TripleStore {
        TripleStore::new(
            4,
            2,
            vec![
                Triple::new(0u32, 0u32, 1u32),
                Triple::new(0u32, 0u32, 2u32),
                Triple::new(1u32, 0u32, 2u32),
                Triple::new(0u32, 1u32, 3u32),
                Triple::new(2u32, 1u32, 0u32),
            ],
        )
        .unwrap()
    }

    #[test]
    fn unbound_pattern_matches_everything() {
        let s = store();
        assert_eq!(TriplePattern::any().count(&s), 5);
    }

    #[test]
    fn relation_bound_pattern_uses_relation_slice() {
        let s = store();
        let p = TriplePattern::any().with_relation(RelationId(0));
        assert_eq!(p.count(&s), 3);
        assert!(p.matches(&s).iter().all(|t| t.relation == RelationId(0)));
    }

    #[test]
    fn subject_relation_pattern_is_a_range() {
        let s = store();
        let p = TriplePattern::any()
            .with_relation(RelationId(0))
            .with_subject(EntityId(0));
        let matches = p.matches(&s);
        assert_eq!(matches.len(), 2);
        assert!(matches.iter().all(|t| t.subject == EntityId(0)));
    }

    #[test]
    fn fully_bound_pattern_is_membership() {
        let s = store();
        let hit = TriplePattern::any()
            .with_subject(EntityId(1))
            .with_relation(RelationId(0))
            .with_object(EntityId(2));
        assert_eq!(hit.count(&s), 1);
        let miss = hit.with_object(EntityId(3));
        assert_eq!(miss.count(&s), 0);
    }

    #[test]
    fn object_only_pattern_scans() {
        let s = store();
        let p = TriplePattern::any().with_object(EntityId(2));
        assert_eq!(p.count(&s), 2);
    }

    #[test]
    fn subject_only_pattern_spans_relations() {
        let s = store();
        let p = TriplePattern::any().with_subject(EntityId(0));
        assert_eq!(p.count(&s), 3, "subject 0 appears under both relations");
    }
}
