//! Differential tests of the batched, query-deduplicated ranking engine:
//! `BatchRanker` (and `rank_all`, which wraps it) must produce ranks
//! **identical** to the scalar per-triple oracle `rank_all_scalar`, raw and
//! filtered, under heavy query duplication and at any thread count. Also
//! pins the two-pointer merge walk inside `rank_with_exclusions` against an
//! independent binary-search reference.

use kgfd_embed::{new_model, ModelKind};
use kgfd_eval::{rank_all, rank_all_scalar, rank_with_exclusions, BatchRanker};
use kgfd_kg::{EntityId, KnownTriples, Triple};
use proptest::prelude::*;

const N: u32 = 11;
const K: u32 = 3;
const DIM: usize = 12;

/// Triples drawn from tiny pools: with ≤4 distinct subjects/objects per
/// relation, most `(s, r)` / `(r, o)` side queries repeat many times —
/// the discovery-shaped workload the deduplicating engine exists for.
fn arb_dup_heavy_triples() -> impl Strategy<Value = Vec<Triple>> {
    proptest::collection::vec(
        (0..4u32, 0..K, 0..4u32).prop_map(|(s, r, o)| Triple::new(s, r, o)),
        1..60,
    )
}

fn arb_known() -> impl Strategy<Value = Vec<Triple>> {
    proptest::collection::vec(
        (0..N, 0..K, 0..N).prop_map(|(s, r, o)| Triple::new(s, r, o)),
        0..40,
    )
}

fn arb_kind() -> impl Strategy<Value = ModelKind> {
    proptest::sample::select(ModelKind::ALL.to_vec())
}

/// The pre-merge-walk implementation: per-entity binary search into the
/// sorted exclusion list. Kept verbatim as the differential reference.
fn rank_with_exclusions_binary_search(
    scores: &[f32],
    target: EntityId,
    exclude: &[EntityId],
) -> f64 {
    let target_score = scores[target.index()];
    let mut greater = 0u64;
    let mut ties = 0u64;
    for (e, &score) in scores.iter().enumerate() {
        if e == target.index() || exclude.binary_search(&EntityId(e as u32)).is_ok() {
            continue;
        }
        if score > target_score {
            greater += 1;
        } else if score == target_score {
            ties += 1;
        }
    }
    1.0 + greater as f64 + ties as f64 / 2.0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn merge_walk_matches_binary_search_reference(
        // Coarse score grid (and an occasional NaN — one lattice value maps
        // to it) to force plenty of ties and exercise the NaN-never-outranks
        // branch.
        raw_scores in proptest::collection::vec(
            (-4i32..5).prop_map(|v| if v == 4 { f32::NAN } else { v as f32 / 2.0 }),
            2..40
        ),
        target_pick in 0usize..1000,
        excl in proptest::collection::vec(0u32..40, 0..12)
    ) {
        let mut target = EntityId((target_pick % raw_scores.len()) as u32);
        let mut scores = raw_scores;
        // The target's own score must be comparable.
        if scores[target.index()].is_nan() {
            scores[target.index()] = 0.0;
        }
        let mut exclude: Vec<EntityId> = excl
            .into_iter()
            .filter(|&e| (e as usize) < scores.len())
            .map(EntityId)
            .collect();
        exclude.sort_unstable();
        exclude.dedup();
        // `target` may or may not appear in `exclude` — both paths must
        // agree either way.
        let merge = rank_with_exclusions(&scores, target, &exclude);
        let binary = rank_with_exclusions_binary_search(&scores, target, &exclude);
        prop_assert_eq!(merge.to_bits(), binary.to_bits(),
            "merge walk {} vs binary search {}", merge, binary);
        // Also check a target that IS excluded (it must still compete).
        if let Some(&x) = exclude.first() {
            target = x;
            if scores[target.index()].is_nan() {
                scores[target.index()] = 0.0;
            }
            let merge = rank_with_exclusions(&scores, target, &exclude);
            let binary = rank_with_exclusions_binary_search(&scores, target, &exclude);
            prop_assert_eq!(merge.to_bits(), binary.to_bits());
        }
    }

    #[test]
    fn batched_ranks_equal_scalar_ranks_raw_and_filtered(
        kind in arb_kind(), seed in 0u64..200,
        triples in arb_dup_heavy_triples(), known_triples in arb_known()
    ) {
        let model = new_model(kind, N as usize, K as usize, DIM, seed);
        let known = KnownTriples::from_slices([known_triples.as_slice()]);

        let scalar_raw = rank_all_scalar(model.as_ref(), &triples, None, 1);
        let batched_raw = rank_all(model.as_ref(), &triples, None, 1);
        prop_assert_eq!(&scalar_raw, &batched_raw, "{}: raw ranks diverged", kind);

        let scalar_filt = rank_all_scalar(model.as_ref(), &triples, Some(&known), 1);
        let batched_filt = rank_all(model.as_ref(), &triples, Some(&known), 1);
        prop_assert_eq!(&scalar_filt, &batched_filt, "{}: filtered ranks diverged", kind);
    }

    #[test]
    fn thread_count_never_changes_batched_ranks(
        kind in arb_kind(), seed in 0u64..200, triples in arb_dup_heavy_triples()
    ) {
        let model = new_model(kind, N as usize, K as usize, DIM, seed);
        let known = KnownTriples::from_slices([triples.as_slice()]);
        let one = rank_all(model.as_ref(), &triples, Some(&known), 1);
        let four = rank_all(model.as_ref(), &triples, Some(&known), 4);
        prop_assert_eq!(&one, &four, "{}: thread count changed ranks", kind);
    }
}

/// Deterministic (non-proptest) check against the environment-selected
/// thread count, mirroring the CI matrix: `KGFD_THREADS=1` and `=4` legs
/// must both reproduce the scalar oracle exactly.
#[test]
fn env_thread_count_matches_scalar_oracle() {
    let threads = std::env::var("KGFD_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(2);
    let model = new_model(ModelKind::ComplEx, N as usize, K as usize, DIM, 7);
    // 8 distinct queries fanned out over 64 triples: dedup ratio 8×.
    let triples: Vec<Triple> = (0..64u32)
        .map(|i| Triple::new(i % 4, i % 2, (i / 8) % 4))
        .collect();
    let known = KnownTriples::from_slices([triples.as_slice()]);

    let (ranks, stats) =
        BatchRanker::new(model.as_ref(), threads).rank_all_with_stats(&triples, Some(&known));
    let oracle = rank_all_scalar(model.as_ref(), &triples, Some(&known), threads);
    assert_eq!(ranks, oracle);
    assert_eq!(stats.total_queries, 128);
    assert!(stats.distinct_queries < stats.total_queries);
    assert!(stats.dedup_ratio() > 1.0);
}

/// The engine must also agree on eval-shaped workloads where every query is
/// unique (no dedup wins available, dedup ratio 1).
#[test]
fn unique_query_workload_matches_scalar_oracle() {
    let model = new_model(ModelKind::TransE, N as usize, K as usize, DIM, 3);
    let triples: Vec<Triple> = (0..N)
        .flat_map(|s| (0..K).map(move |r| Triple::new(s, r, (s + r + 1) % N)))
        .collect();
    let (ranks, stats) = BatchRanker::new(model.as_ref(), 2).rank_all_with_stats(&triples, None);
    let oracle = rank_all_scalar(model.as_ref(), &triples, None, 2);
    assert_eq!(ranks, oracle);
    // Object-side queries (s, r) are all distinct by construction.
    assert_eq!(stats.total_queries, 2 * triples.len() as u64);
}
