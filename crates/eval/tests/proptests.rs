//! Property-based tests of the evaluation protocol.

use kgfd_embed::{new_model, ModelKind};
use kgfd_eval::{
    evaluate_ranking, hits_at, mean_rank, mrr, rank_all, rank_with_exclusions, RankingSummary,
};
use kgfd_kg::{EntityId, KnownTriples, Triple, TripleStore};
use proptest::prelude::*;

const N: u32 = 9;
const K: u32 = 3;

fn arb_triples() -> impl Strategy<Value = Vec<Triple>> {
    proptest::collection::vec(
        (0..N, 0..K, 0..N).prop_map(|(s, r, o)| Triple::new(s, r, o)),
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rank_is_always_in_entity_range(scores in proptest::collection::vec(-5.0f32..5.0, 2..30),
                                      target in 0usize..2) {
        let target = EntityId((target % scores.len()) as u32);
        let r = rank_with_exclusions(&scores, target, &[]);
        prop_assert!(r >= 1.0);
        prop_assert!(r <= scores.len() as f64);
    }

    #[test]
    fn excluding_entities_never_worsens_rank(
        scores in proptest::collection::vec(-5.0f32..5.0, 3..30),
        excl in proptest::collection::vec(0u32..30, 0..5)
    ) {
        let target = EntityId(0);
        let mut exclude: Vec<EntityId> = excl
            .into_iter()
            .filter(|&e| (e as usize) < scores.len())
            .map(EntityId)
            .collect();
        exclude.sort_unstable();
        exclude.dedup();
        let raw = rank_with_exclusions(&scores, target, &[]);
        let filtered = rank_with_exclusions(&scores, target, &exclude);
        prop_assert!(filtered <= raw + 1e-12);
    }

    #[test]
    fn mrr_and_hits_are_bounded(ranks in proptest::collection::vec(1.0f64..100.0, 0..50)) {
        prop_assert!((0.0..=1.0).contains(&mrr(&ranks)));
        for k in [1usize, 3, 10] {
            prop_assert!((0.0..=1.0).contains(&hits_at(&ranks, k)));
        }
        if !ranks.is_empty() {
            prop_assert!(mean_rank(&ranks) >= 1.0);
            // MRR ≥ 1/mean_rank by Jensen's inequality.
            prop_assert!(mrr(&ranks) + 1e-12 >= 1.0 / mean_rank(&ranks));
        }
    }

    #[test]
    fn hits_is_monotone_in_k(ranks in proptest::collection::vec(1.0f64..50.0, 1..40)) {
        prop_assert!(hits_at(&ranks, 1) <= hits_at(&ranks, 3));
        prop_assert!(hits_at(&ranks, 3) <= hits_at(&ranks, 10));
    }

    #[test]
    fn evaluation_is_thread_count_invariant(triples in arb_triples(), seed in 0u64..50) {
        let store = TripleStore::new(N as usize, K as usize, triples).unwrap();
        let model = new_model(ModelKind::DistMult, N as usize, K as usize, 8, seed);
        let known = KnownTriples::from_slices([store.triples()]);
        let a = evaluate_ranking(model.as_ref(), store.triples(), Some(&known), 1);
        let b = evaluate_ranking(model.as_ref(), store.triples(), Some(&known), 4);
        prop_assert_eq!(a.mrr.to_bits(), b.mrr.to_bits());
        prop_assert_eq!(a.count, b.count);
    }

    #[test]
    fn summary_recomposes_from_per_triple_ranks(triples in arb_triples(), seed in 0u64..50) {
        let store = TripleStore::new(N as usize, K as usize, triples).unwrap();
        let model = new_model(ModelKind::TransE, N as usize, K as usize, 8, seed);
        let ranks = rank_all(model.as_ref(), store.triples(), None, 2);
        let flat: Vec<f64> = ranks.iter().flat_map(|r| [r.subject, r.object]).collect();
        let direct = evaluate_ranking(model.as_ref(), store.triples(), None, 2);
        let recomposed = RankingSummary::from_ranks(&flat);
        prop_assert!((direct.mrr - recomposed.mrr).abs() < 1e-12);
        prop_assert_eq!(direct.count, recomposed.count);
    }
}
