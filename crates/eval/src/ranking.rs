//! Ranking a triple against its corruptions (paper §2.1 "Testing" and §3.3).
//!
//! For a triple `(s, r, o)`, the object-side rank is the rank of `o`'s score
//! among the scores of every entity substituted into the object slot (and
//! symmetrically for the subject side). In the *filtered* setting
//! (Bordes et al.), corruptions that are themselves known-true triples are
//! excluded so the model is not penalized for ranking other true facts high.
//!
//! Ties are resolved to their mean rank (`1 + #greater + #ties/2`), the
//! convention that keeps constant-scoring models from looking artificially
//! good or bad.

use kgfd_embed::KgeModel;
use kgfd_kg::{EntityId, KnownTriples, Triple};

/// Subject- and object-side ranks of one triple (1-based, mean-tie).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TripleRanks {
    /// Rank of the true subject among all subject corruptions.
    pub subject: f64,
    /// Rank of the true object among all object corruptions.
    pub object: f64,
}

impl TripleRanks {
    /// Mean of the two side ranks — the per-triple rank used when a single
    /// number is needed (as in the discovery algorithm's `top_n` filter).
    pub fn mean(&self) -> f64 {
        0.5 * (self.subject + self.object)
    }

    /// The reciprocal-rank contribution of this triple to a two-sided MRR
    /// (the standard protocol averages both directions).
    pub fn reciprocal_mean(&self) -> f64 {
        0.5 * (1.0 / self.subject + 1.0 / self.object)
    }
}

/// Rank of `target`'s score within `scores`, with the entities in `exclude`
/// (other known-true completions) removed from the competition.
///
/// `exclude` must be sorted ascending (as produced by [`KnownTriples`]);
/// `target` itself always competes even if listed there.
///
/// The exclusion check is a two-pointer merge walk over the sorted list —
/// O(N + E) against the O(N log E) of a per-entity binary search, which
/// matters because this runs once per (triple, side) on the evaluation hot
/// path.
pub fn rank_with_exclusions(scores: &[f32], target: EntityId, exclude: &[EntityId]) -> f64 {
    let target_score = scores[target.index()];
    let mut greater = 0u64;
    let mut ties = 0u64;
    // Cursor into the sorted exclusion list; advanced in lockstep with `e`.
    let mut xi = 0usize;
    for (e, &score) in scores.iter().enumerate() {
        while xi < exclude.len() && exclude[xi].index() < e {
            xi += 1;
        }
        let excluded = xi < exclude.len() && exclude[xi].index() == e;
        if excluded {
            xi += 1;
        }
        if e == target.index() || excluded {
            continue;
        }
        // NaN never outranks: both comparisons below are false for NaN.
        if score > target_score {
            greater += 1;
        } else if score == target_score {
            ties += 1;
        }
    }
    1.0 + greater as f64 + ties as f64 / 2.0
}

/// Scratch buffers reused across rank computations.
pub struct RankScratch {
    scores: Vec<f32>,
}

impl RankScratch {
    /// Allocates buffers for a model with `num_entities` entities.
    pub fn new(num_entities: usize) -> Self {
        RankScratch {
            scores: vec![0.0; num_entities],
        }
    }
}

/// Computes both side ranks of `t` under `model`. Pass `known` to use the
/// filtered protocol (recommended; pass `None` for raw ranks).
pub fn rank_triple(
    model: &dyn KgeModel,
    t: Triple,
    known: Option<&KnownTriples>,
    scratch: &mut RankScratch,
) -> TripleRanks {
    model.score_objects(t.subject, t.relation, &mut scratch.scores);
    let object = rank_with_exclusions(
        &scratch.scores,
        t.object,
        known.map_or(&[], |k| k.true_objects(t.subject, t.relation)),
    );
    model.score_subjects(t.relation, t.object, &mut scratch.scores);
    let subject = rank_with_exclusions(
        &scratch.scores,
        t.subject,
        known.map_or(&[], |k| k.true_subjects(t.relation, t.object)),
    );
    TripleRanks { subject, object }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_counts_strictly_greater() {
        let scores = [0.9, 0.5, 0.7, 0.1];
        assert_eq!(rank_with_exclusions(&scores, EntityId(1), &[]), 3.0);
        assert_eq!(rank_with_exclusions(&scores, EntityId(0), &[]), 1.0);
        assert_eq!(rank_with_exclusions(&scores, EntityId(3), &[]), 4.0);
    }

    #[test]
    fn ties_resolve_to_mean_rank() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        // 3 ties → rank 1 + 0 + 1.5 = 2.5 for every entity.
        for e in 0..4 {
            assert_eq!(rank_with_exclusions(&scores, EntityId(e), &[]), 2.5);
        }
    }

    #[test]
    fn exclusions_remove_competitors() {
        let scores = [0.9, 0.5, 0.7, 0.1];
        // Excluding the top scorer promotes entity 1 to rank 2.
        assert_eq!(
            rank_with_exclusions(&scores, EntityId(1), &[EntityId(0)]),
            2.0
        );
        // Excluding the target itself must not remove it.
        assert_eq!(
            rank_with_exclusions(&scores, EntityId(0), &[EntityId(0)]),
            1.0
        );
    }

    #[test]
    fn nan_scores_never_outrank() {
        let scores = [f32::NAN, 0.5, f32::NAN];
        assert_eq!(rank_with_exclusions(&scores, EntityId(1), &[]), 1.0);
    }

    #[test]
    fn triple_ranks_aggregations() {
        let r = TripleRanks {
            subject: 1.0,
            object: 4.0,
        };
        assert_eq!(r.mean(), 2.5);
        assert!((r.reciprocal_mean() - 0.625).abs() < 1e-12);
    }
}
