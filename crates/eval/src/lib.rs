//! # kgfd-eval — link-prediction evaluation protocol
//!
//! The standard evaluation machinery the paper relies on (§2.1 "Testing",
//! §3.3): both-side corruption [`ranking`](rank_triple), raw and *filtered*
//! settings, mean-tie rank resolution, MRR / Hits@k / mean-rank aggregation,
//! parallel whole-split evaluation ([`evaluate_ranking`]), and per-relation
//! triple classification ([`Thresholds`]).
//!
//! ```
//! use kgfd_datasets::toy_biomedical;
//! use kgfd_embed::{train, ModelKind, TrainConfig};
//! use kgfd_eval::evaluate_ranking;
//!
//! let data = toy_biomedical();
//! let (model, _) = train(ModelKind::DistMult, &data.train,
//!                        &TrainConfig { epochs: 10, ..TrainConfig::default() });
//! let known = data.known_triples();
//! let summary = evaluate_ranking(model.as_ref(), &data.test, Some(&known), 2);
//! assert!(summary.mrr >= 0.0 && summary.mrr <= 1.0);
//! ```

#![warn(missing_docs)]

mod batch;
mod calibration;
mod classification;
mod heldout;
mod metrics;
mod protocol;
mod ranking;
mod selection;
mod stratified;

pub use batch::{BatchRankStats, BatchRanker};
pub use calibration::Calibration;
pub use classification::Thresholds;
pub use heldout::{score_against_held_out, HeldOutReport};
pub use metrics::{hits_at, mean_rank, mrr, RankingSummary};
pub use protocol::{
    evaluate_per_relation, evaluate_ranking, rank_all, rank_all_scalar, PerRelationSummary,
};
pub use ranking::{rank_triple, rank_with_exclusions, RankScratch, TripleRanks};
pub use selection::{
    grid_search, train_with_early_stopping, EarlyStopping, SearchResult, SearchSpace,
    SelectionStats,
};
pub use stratified::{evaluate_stratified, StratifiedSummary};

/// Numerically stable `f64` logistic sigmoid (shared by calibration and
/// classification helpers).
#[inline]
pub fn sigmoid_f64(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}
