//! Score calibration: turning raw KGE scores into probabilities.
//!
//! The paper's problem definition (Definition 2.1) asks for triples with
//! `P(t) > b` — a *probability* threshold — but, like AmpliGraph, its
//! algorithm substitutes a rank threshold (`top_n`) because raw scores are
//! uncalibrated. This module closes that gap with Platt scaling: a logistic
//! model `P(t) = σ(a·f(t) + c)` fitted on validation positives vs sampled
//! corruptions, so Definition 2.1 can be applied literally
//! (see `DiscoveryConfig::min_probability` in `fact-discovery`).

use crate::sigmoid_f64;
use kgfd_embed::{CorruptSide, KgeModel, NegativeSampler};
use kgfd_kg::{Triple, TripleStore};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A fitted Platt-scaling transform `P = σ(a·score + c)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// Slope `a` (positive: higher scores → higher probability).
    pub slope: f64,
    /// Intercept `c`.
    pub intercept: f64,
}

impl Calibration {
    /// Fits the transform on `positives` (label 1) against one sampled
    /// corruption each (label 0), by full-batch gradient descent on the
    /// logistic loss. Deterministic given `seed`.
    pub fn fit(
        model: &dyn KgeModel,
        positives: &[Triple],
        filter: &TripleStore,
        seed: u64,
    ) -> Calibration {
        let mut rng = StdRng::seed_from_u64(seed);
        let sampler = NegativeSampler::new(model.num_entities());
        let mut scores = Vec::with_capacity(positives.len() * 2);
        for &t in positives {
            scores.push((model.score(t) as f64, 1.0));
            let neg = sampler.corrupt(t, CorruptSide::Both, Some(filter), &mut rng);
            scores.push((model.score(neg) as f64, 0.0));
        }
        Self::fit_scores(&scores)
    }

    /// Fits directly from `(score, label)` pairs.
    pub fn fit_scores(scored: &[(f64, f64)]) -> Calibration {
        if scored.is_empty() {
            return Calibration {
                slope: 1.0,
                intercept: 0.0,
            };
        }
        // Standardize scores for a well-conditioned fit.
        let n = scored.len() as f64;
        let mean = scored.iter().map(|p| p.0).sum::<f64>() / n;
        let var = scored.iter().map(|p| (p.0 - mean).powi(2)).sum::<f64>() / n;
        let std = var.sqrt().max(1e-9);

        let mut a = 1.0f64;
        let mut c = 0.0f64;
        let lr = 0.5;
        for _ in 0..500 {
            let mut ga = 0.0;
            let mut gc = 0.0;
            for &(score, label) in scored {
                let x = (score - mean) / std;
                let p = sigmoid_f64(a * x + c);
                let err = p - label;
                ga += err * x;
                gc += err;
            }
            a -= lr * ga / n;
            c -= lr * gc / n;
        }
        // Fold the standardization back into the parameters.
        Calibration {
            slope: a / std,
            intercept: c - a * mean / std,
        }
    }

    /// The calibrated probability of a raw score.
    #[inline]
    pub fn probability(&self, score: f32) -> f64 {
        sigmoid_f64(self.slope * score as f64 + self.intercept)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgfd_datasets::toy_biomedical;
    use kgfd_embed::{train, ModelKind, TrainConfig};

    #[test]
    fn separable_scores_calibrate_sharply() {
        let scored: Vec<(f64, f64)> = (0..50)
            .flat_map(|i| [(2.0 + i as f64 * 0.01, 1.0), (-2.0 - i as f64 * 0.01, 0.0)])
            .collect();
        let cal = Calibration::fit_scores(&scored);
        assert!(cal.probability(3.0) > 0.9, "{}", cal.probability(3.0));
        assert!(cal.probability(-3.0) < 0.1, "{}", cal.probability(-3.0));
        assert!(cal.slope > 0.0);
    }

    #[test]
    fn probabilities_are_monotone_in_score() {
        let scored = vec![(1.0, 1.0), (0.0, 0.0), (2.0, 1.0), (-1.0, 0.0)];
        let cal = Calibration::fit_scores(&scored);
        let mut prev = 0.0;
        for s in [-5.0f32, -1.0, 0.0, 1.0, 5.0] {
            let p = cal.probability(s);
            assert!((0.0..=1.0).contains(&p));
            assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    fn empty_input_yields_identity_like_transform() {
        let cal = Calibration::fit_scores(&[]);
        assert!((cal.probability(0.0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn trained_model_calibrates_above_half_on_truths() {
        let data = toy_biomedical();
        let (model, _) = train(
            ModelKind::ComplEx,
            &data.train,
            &TrainConfig {
                dim: 16,
                epochs: 40,
                seed: 5,
                ..TrainConfig::default()
            },
        );
        let cal = Calibration::fit(model.as_ref(), data.train.triples(), &data.train, 3);
        let mean_p: f64 = data
            .train
            .triples()
            .iter()
            .map(|&t| cal.probability(model.score(t)))
            .sum::<f64>()
            / data.train.len() as f64;
        assert!(mean_p > 0.6, "mean probability of truths {mean_p}");
    }
}
