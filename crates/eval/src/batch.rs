//! The batched, query-deduplicated ranking engine.
//!
//! Ranking a triple needs two full entity sweeps — one per corruption side —
//! and the scalar path ([`crate::rank_all_scalar`]) pays them per triple
//! even when triples share a side query. Discovery candidates are the
//! extreme case: a mesh grid of `√max_candidates` entities per side yields
//! up to `max_candidates` triples per relation that share only
//! `~√max_candidates` distinct `(s, r)` object-side and `(r, o)`
//! subject-side queries (a ~16× redundancy at the paper's budget of 500).
//!
//! [`BatchRanker`] instead:
//!
//! 1. groups the input triples by distinct `(s, r)` and `(r, o)` side
//!    queries (first-appearance order, so grouping is deterministic) into a
//!    flat CSR layout — no per-group allocations;
//! 2. scores each distinct query **exactly once** through the model's tiled
//!    [`score_objects_batch`](KgeModel::score_objects_batch) /
//!    [`score_subjects_batch`](KgeModel::score_subjects_batch) kernels;
//! 3. resolves every dependent triple's rank from the shared score row;
//! 4. parallelises across *query groups* (not triples) on the persistent
//!    [`kgfd_pool`] with a deterministic merge — each (triple, side) slot
//!    has exactly one writer, so results are identical at any thread count.
//!
//! **Unique-workload bypass.** Eval-shaped inputs have no repeated side
//! queries (`dedup_ratio` 1.0); the group/resolve indirection is then pure
//! overhead. When grouping finds `distinct == total` for a side, the engine
//! skips group materialization entirely and scores rows straight off the
//! triple list ([`rank_rows_direct`]), writing ranks into disjoint output
//! chunks. Ranks are identical either way — the bypass reads the same
//! score rows and exclusion lists.
//!
//! **Scratch reuse.** Score rows live in a per-thread scratch buffer that
//! persists across calls (pool workers are process-wide, so after warm-up
//! no ranking pass allocates kernel buffers at all).
//!
//! Scores from the batched kernels are bit-identical to the single-query
//! kernels (see `kgfd_embed::batch`), so the ranks produced here are
//! *equal* — not merely close — to [`crate::rank_triple`]'s.
//!
//! Observability: each pass records `eval.rank.total_queries`,
//! `eval.rank.distinct_queries`, the `eval.rank.dedup_ratio` gauge, and a
//! per-tile `eval.rank.batch_kernel_us` histogram via `kgfd-obs`.

use crate::{rank_with_exclusions, TripleRanks};
use fxhash::{FxBuildHasher, FxHashMap};
use kgfd_embed::KgeModel;
use kgfd_kg::{EntityId, KnownTriples, RelationId, Triple};
use std::cell::RefCell;

/// Queries scored per batch-kernel call inside each worker; bounds a
/// worker's scratch buffer at `WORKER_TILE × num_entities` floats while
/// letting the model's internal tile (`kgfd_embed::batch::QUERY_TILE`)
/// amortise the entity-table sweep.
const WORKER_TILE: usize = 16;

thread_local! {
    /// Per-thread score-row scratch, reused across kernel tiles *and*
    /// across ranking passes (pool workers persist for the process).
    static SCRATCH: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` over a zeroed-capacity thread-local scratch of at least `len`
/// floats. The kernels overwrite every slot they read back, so stale
/// contents from previous passes are harmless.
fn with_scratch<R>(len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    SCRATCH.with(|cell| {
        let mut buf = cell.borrow_mut();
        if buf.len() < len {
            buf.resize(len, 0.0);
        }
        f(&mut buf[..len])
    })
}

/// Work-sharing accounting of one [`BatchRanker`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchRankStats {
    /// Side queries implied by the input (two per triple).
    pub total_queries: u64,
    /// Distinct `(s, r)` plus distinct `(r, o)` queries actually scored.
    pub distinct_queries: u64,
}

impl BatchRankStats {
    /// `total / distinct` — how much entity-sweep work deduplication saved
    /// (1.0 = every query unique; discovery-shaped inputs reach ~16×).
    pub fn dedup_ratio(&self) -> f64 {
        if self.distinct_queries == 0 {
            return 1.0;
        }
        self.total_queries as f64 / self.distinct_queries as f64
    }
}

/// One corruption side's grouping outcome.
enum SideGroups {
    /// Every side query was distinct (`dedup_ratio` 1.0): skip the group
    /// indirection and rank rows straight off the triple list.
    Unique,
    /// Grouped queries in flat CSR form.
    Grouped(QueryGroups),
}

/// Distinct side queries and their dependent triples, CSR-packed:
/// group `g` covers `dependents[starts[g] as usize..starts[g + 1] as usize]`.
struct QueryGroups {
    /// `(subject, relation)` for the object side, `(relation, object)` for
    /// the subject side — raw ids to keep the key `Copy + Hash`;
    /// first-appearance order.
    keys: Vec<(u32, u32)>,
    /// CSR offsets into `dependents`, length `keys.len() + 1`.
    starts: Vec<u32>,
    /// `(triple index, rank target)` pairs, grouped by query, input order
    /// within each group.
    dependents: Vec<(u32, EntityId)>,
}

/// The side query key and rank target of one triple.
#[inline]
fn side_key(t: &Triple, object_side: bool) -> ((u32, u32), EntityId) {
    if object_side {
        ((t.subject.0, t.relation.0), t.object)
    } else {
        ((t.relation.0, t.object.0), t.subject)
    }
}

/// Groups `triples` by their distinct side query, preserving
/// first-appearance order (deterministic for a fixed input order). Returns
/// the groups plus the distinct-query count. Detecting `distinct == total`
/// costs one hash pass; only duplicated inputs pay for CSR materialization.
fn group_queries(triples: &[Triple], object_side: bool) -> (SideGroups, usize) {
    let mut index: FxHashMap<(u32, u32), u32> =
        FxHashMap::with_capacity_and_hasher(triples.len(), FxBuildHasher::default());
    let mut gid_of: Vec<u32> = Vec::with_capacity(triples.len());
    let mut keys: Vec<(u32, u32)> = Vec::new();
    let mut counts: Vec<u32> = Vec::new();
    for t in triples {
        let (key, _) = side_key(t, object_side);
        let gid = *index.entry(key).or_insert_with(|| {
            keys.push(key);
            counts.push(0);
            (keys.len() - 1) as u32
        });
        counts[gid as usize] += 1;
        gid_of.push(gid);
    }
    let distinct = keys.len();
    if distinct == triples.len() {
        return (SideGroups::Unique, distinct);
    }

    let mut starts = vec![0u32; distinct + 1];
    for (g, &c) in counts.iter().enumerate() {
        starts[g + 1] = starts[g] + c;
    }
    let mut cursor: Vec<u32> = starts[..distinct].to_vec();
    let mut dependents = vec![(0u32, EntityId(0)); triples.len()];
    for (i, t) in triples.iter().enumerate() {
        let (_, target) = side_key(t, object_side);
        let gid = gid_of[i] as usize;
        dependents[cursor[gid] as usize] = (i as u32, target);
        cursor[gid] += 1;
    }
    (
        SideGroups::Grouped(QueryGroups {
            keys,
            starts,
            dependents,
        }),
        distinct,
    )
}

/// Scores one tile of side queries through the batched kernel into `out`
/// (`tile.len() × n` floats), recording the kernel histogram and a
/// trace-only span exactly like the pre-pool engine did.
fn score_tile(model: &dyn KgeModel, tile: &[(u32, u32)], object_side: bool, out: &mut [f32]) {
    let tile_span = kgfd_obs::span_traced!("eval.rank.batch_kernel");
    let kernel = std::time::Instant::now();
    if object_side {
        let queries: Vec<(EntityId, RelationId)> = tile
            .iter()
            .map(|&(a, b)| (EntityId(a), RelationId(b)))
            .collect();
        model.score_objects_batch(&queries, out);
    } else {
        let queries: Vec<(RelationId, EntityId)> = tile
            .iter()
            .map(|&(a, b)| (RelationId(a), EntityId(b)))
            .collect();
        model.score_subjects_batch(&queries, out);
    }
    kgfd_obs::histogram("eval.rank.batch_kernel_us").record(kernel.elapsed().as_secs_f64() * 1e6);
    drop(tile_span);
}

/// The exclusion list for one side query under the filtered protocol.
#[inline]
fn exclusions(known: Option<&KnownTriples>, key: (u32, u32), object_side: bool) -> &[EntityId] {
    known.map_or(&[][..], |k| {
        if object_side {
            k.true_objects(EntityId(key.0), RelationId(key.1))
        } else {
            k.true_subjects(RelationId(key.0), EntityId(key.1))
        }
    })
}

/// Scores a contiguous range of query groups (in tiles of [`WORKER_TILE`])
/// and resolves every dependent rank from the shared rows. `starts` carries
/// the groups' absolute CSR offsets into the full `dependents` slice. Runs
/// on pool workers; score rows come from the thread's persistent scratch.
fn rank_groups(
    model: &dyn KgeModel,
    keys: &[(u32, u32)],
    starts: &[u32],
    dependents: &[(u32, EntityId)],
    known: Option<&KnownTriples>,
    object_side: bool,
) -> Vec<(u32, f64)> {
    let n = model.num_entities();
    let span = starts.last().copied().unwrap_or(0) - starts.first().copied().unwrap_or(0);
    let mut results = Vec::with_capacity(span as usize);
    with_scratch(WORKER_TILE.min(keys.len().max(1)) * n, |scores| {
        for (tile_i, tile) in keys.chunks(WORKER_TILE).enumerate() {
            let out = &mut scores[..tile.len() * n];
            score_tile(model, tile, object_side, out);
            for (slot, &key) in tile.iter().enumerate() {
                let row = &out[slot * n..(slot + 1) * n];
                let exclude = exclusions(known, key, object_side);
                let g = tile_i * WORKER_TILE + slot;
                let deps = &dependents[starts[g] as usize..starts[g + 1] as usize];
                for &(triple_idx, target) in deps {
                    results.push((triple_idx, rank_with_exclusions(row, target, exclude)));
                }
            }
        }
    });
    results
}

/// The unique-workload fast path: every triple is its own group, so rank
/// rows are computed straight from the triple list and written into the
/// caller's (disjoint) output chunk — no group structures, no result
/// buffering. Bit-identical to the grouped path: same kernel rows, same
/// exclusion lists, same `rank_with_exclusions` reduction.
fn rank_rows_direct(
    model: &dyn KgeModel,
    triples: &[Triple],
    known: Option<&KnownTriples>,
    object_side: bool,
    out: &mut [f64],
) {
    debug_assert_eq!(triples.len(), out.len());
    let n = model.num_entities();
    with_scratch(WORKER_TILE.min(triples.len().max(1)) * n, |scores| {
        let mut tile_keys = [(0u32, 0u32); WORKER_TILE];
        for (tile, out_tile) in triples.chunks(WORKER_TILE).zip(out.chunks_mut(WORKER_TILE)) {
            for (slot, t) in tile.iter().enumerate() {
                tile_keys[slot] = side_key(t, object_side).0;
            }
            let rows = &mut scores[..tile.len() * n];
            score_tile(model, &tile_keys[..tile.len()], object_side, rows);
            for (slot, t) in tile.iter().enumerate() {
                let row = &rows[slot * n..(slot + 1) * n];
                let (key, target) = side_key(t, object_side);
                let exclude = exclusions(known, key, object_side);
                out_tile[slot] = rank_with_exclusions(row, target, exclude);
            }
        }
    });
}

/// Batched, query-deduplicated ranking over a triple slice. See the module
/// docs for the work-sharing model and determinism contract.
pub struct BatchRanker<'a> {
    model: &'a dyn KgeModel,
    threads: usize,
}

impl<'a> BatchRanker<'a> {
    /// A ranker over `model` using up to `threads` workers (clamped to ≥ 1).
    pub fn new(model: &'a dyn KgeModel, threads: usize) -> Self {
        BatchRanker {
            model,
            threads: threads.max(1),
        }
    }

    /// Both-side ranks for every triple, in input order — equal to running
    /// [`crate::rank_triple`] per triple, at a fraction of the entity
    /// sweeps when side queries repeat.
    pub fn rank_all(&self, triples: &[Triple], known: Option<&KnownTriples>) -> Vec<TripleRanks> {
        self.rank_all_with_stats(triples, known).0
    }

    /// [`rank_all`](BatchRanker::rank_all) plus the dedup accounting of the
    /// pass. Also publishes the stats to the `kgfd-obs` registry.
    pub fn rank_all_with_stats(
        &self,
        triples: &[Triple],
        known: Option<&KnownTriples>,
    ) -> (Vec<TripleRanks>, BatchRankStats) {
        let (object_groups, object_distinct) = group_queries(triples, true);
        let (subject_groups, subject_distinct) = group_queries(triples, false);
        let stats = BatchRankStats {
            total_queries: 2 * triples.len() as u64,
            distinct_queries: (object_distinct + subject_distinct) as u64,
        };

        let mut object_ranks = vec![0.0f64; triples.len()];
        let mut subject_ranks = vec![0.0f64; triples.len()];
        self.rank_side(&object_groups, triples, known, true, &mut object_ranks);
        self.rank_side(&subject_groups, triples, known, false, &mut subject_ranks);

        if !triples.is_empty() {
            kgfd_obs::counter("eval.rank.total_queries").add(stats.total_queries);
            kgfd_obs::counter("eval.rank.distinct_queries").add(stats.distinct_queries);
            kgfd_obs::gauge("eval.rank.dedup_ratio").set(stats.dedup_ratio());
        }

        let ranks = subject_ranks
            .into_iter()
            .zip(object_ranks)
            .map(|(subject, object)| TripleRanks { subject, object })
            .collect();
        (ranks, stats)
    }

    /// Ranks one corruption side. Grouped inputs split their query groups
    /// across pool workers in contiguous chunks (every dependent
    /// `(triple, side)` slot is written exactly once, so the merge is
    /// order-insensitive); unique inputs bypass grouping and write disjoint
    /// output chunks directly. Output is identical at any thread count.
    fn rank_side(
        &self,
        groups: &SideGroups,
        triples: &[Triple],
        known: Option<&KnownTriples>,
        object_side: bool,
        out: &mut [f64],
    ) {
        match groups {
            SideGroups::Unique => self.rank_side_unique(triples, known, object_side, out),
            SideGroups::Grouped(g) => self.rank_side_grouped(g, known, object_side, out),
        }
    }

    fn rank_side_unique(
        &self,
        triples: &[Triple],
        known: Option<&KnownTriples>,
        object_side: bool,
        out: &mut [f64],
    ) {
        if self.threads == 1 || triples.len() < 2 * self.threads {
            rank_rows_direct(self.model, triples, known, object_side, out);
            return;
        }
        let chunk = triples.len().div_ceil(self.threads);
        let model = self.model;
        // Pool workers inherit the dispatching thread's innermost span
        // (e.g. `discover.evaluation`) so their kernel-tile spans stay
        // attached to the tree.
        let parent = kgfd_obs::current_span_handle();
        kgfd_pool::scope(|scope| {
            for (part, out_part) in triples.chunks(chunk).zip(out.chunks_mut(chunk)) {
                scope.spawn(move || {
                    let _attach = parent.map(|p| p.enter());
                    rank_rows_direct(model, part, known, object_side, out_part);
                });
            }
        });
    }

    fn rank_side_grouped(
        &self,
        groups: &QueryGroups,
        known: Option<&KnownTriples>,
        object_side: bool,
        out: &mut [f64],
    ) {
        let num_groups = groups.keys.len();
        if self.threads == 1 || num_groups < 2 * self.threads {
            let results = rank_groups(
                self.model,
                &groups.keys,
                &groups.starts,
                &groups.dependents,
                known,
                object_side,
            );
            for (triple_idx, rank) in results {
                out[triple_idx as usize] = rank;
            }
            return;
        }
        let chunk = num_groups.div_ceil(self.threads);
        let model = self.model;
        let parent = kgfd_obs::current_span_handle();
        kgfd_pool::scope(|scope| {
            let handles: Vec<_> = (0..num_groups)
                .step_by(chunk)
                .map(|a| {
                    let b = (a + chunk).min(num_groups);
                    let keys = &groups.keys[a..b];
                    let starts = &groups.starts[a..=b];
                    let dependents = &groups.dependents[..];
                    scope.spawn(move || {
                        let _attach = parent.map(|p| p.enter());
                        rank_groups(model, keys, starts, dependents, known, object_side)
                    })
                })
                .collect();
            for h in handles {
                for (triple_idx, rank) in h.join() {
                    out[triple_idx as usize] = rank;
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgfd_embed::{new_model, ModelKind};

    fn dup_heavy_triples() -> Vec<Triple> {
        // A mesh-grid-shaped workload: 4 subjects × 4 objects over 2
        // relations → 32 triples, 8 distinct queries per side.
        let mut triples = Vec::new();
        for r in 0..2u32 {
            for s in 0..4u32 {
                for o in 4..8u32 {
                    triples.push(Triple::new(s, r, o));
                }
            }
        }
        triples
    }

    /// Eval-shaped: no `(s, r)` or `(r, o)` query repeats, so both sides
    /// take the unique bypass.
    fn unique_triples() -> Vec<Triple> {
        (0..8u32).map(|i| Triple::new(i, 0, (i + 1) % 10)).collect()
    }

    #[test]
    fn grouping_counts_distinct_side_queries() {
        let triples = dup_heavy_triples();
        let m = new_model(ModelKind::DistMult, 10, 2, 8, 3);
        let (_, stats) = BatchRanker::new(m.as_ref(), 1).rank_all_with_stats(&triples, None);
        assert_eq!(stats.total_queries, 64);
        assert_eq!(stats.distinct_queries, 16);
        assert!((stats.dedup_ratio() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn unique_workload_takes_the_bypass_and_counts_stats() {
        let triples = unique_triples();
        let (groups, distinct) = group_queries(&triples, true);
        assert!(matches!(groups, SideGroups::Unique));
        assert_eq!(distinct, triples.len());
        let m = new_model(ModelKind::DistMult, 10, 2, 8, 3);
        let (_, stats) = BatchRanker::new(m.as_ref(), 1).rank_all_with_stats(&triples, None);
        assert_eq!(stats.dedup_ratio(), 1.0);
    }

    #[test]
    fn matches_scalar_ranks_exactly() {
        let m = new_model(ModelKind::ComplEx, 10, 2, 8, 3);
        for triples in [dup_heavy_triples(), unique_triples()] {
            let batched = BatchRanker::new(m.as_ref(), 1).rank_all(&triples, None);
            let known = KnownTriples::from_slices([&triples[..]]);
            let batched_filtered = BatchRanker::new(m.as_ref(), 1).rank_all(&triples, Some(&known));
            let mut scratch = crate::RankScratch::new(10);
            for (i, &t) in triples.iter().enumerate() {
                let raw = crate::rank_triple(m.as_ref(), t, None, &mut scratch);
                let filt = crate::rank_triple(m.as_ref(), t, Some(&known), &mut scratch);
                assert_eq!(batched[i], raw);
                assert_eq!(batched_filtered[i], filt);
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_ranks() {
        let m = new_model(ModelKind::TransE, 10, 2, 8, 3);
        for triples in [dup_heavy_triples(), unique_triples()] {
            let one = BatchRanker::new(m.as_ref(), 1).rank_all(&triples, None);
            let four = BatchRanker::new(m.as_ref(), 4).rank_all(&triples, None);
            assert_eq!(one, four);
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let m = new_model(ModelKind::DistMult, 4, 1, 4, 0);
        let (ranks, stats) = BatchRanker::new(m.as_ref(), 4).rank_all_with_stats(&[], None);
        assert!(ranks.is_empty());
        assert_eq!(stats.distinct_queries, 0);
        assert_eq!(stats.dedup_ratio(), 1.0);
    }

    #[test]
    fn csr_grouping_partitions_every_triple_once() {
        let triples = dup_heavy_triples();
        let (groups, distinct) = group_queries(&triples, false);
        let SideGroups::Grouped(g) = groups else {
            panic!("dup-heavy workload must group");
        };
        assert_eq!(g.keys.len(), distinct);
        assert_eq!(*g.starts.last().unwrap() as usize, triples.len());
        let mut seen = vec![false; triples.len()];
        for gi in 0..g.keys.len() {
            for &(idx, target) in &g.dependents[g.starts[gi] as usize..g.starts[gi + 1] as usize] {
                assert!(!seen[idx as usize], "triple {idx} in two groups");
                seen[idx as usize] = true;
                let (key, expect_target) = side_key(&triples[idx as usize], false);
                assert_eq!(key, g.keys[gi]);
                assert_eq!(target, expect_target);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
