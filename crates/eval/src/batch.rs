//! The batched, query-deduplicated ranking engine.
//!
//! Ranking a triple needs two full entity sweeps — one per corruption side —
//! and the scalar path ([`crate::rank_all_scalar`]) pays them per triple
//! even when triples share a side query. Discovery candidates are the
//! extreme case: a mesh grid of `√max_candidates` entities per side yields
//! up to `max_candidates` triples per relation that share only
//! `~√max_candidates` distinct `(s, r)` object-side and `(r, o)`
//! subject-side queries (a ~16× redundancy at the paper's budget of 500).
//!
//! [`BatchRanker`] instead:
//!
//! 1. groups the input triples by distinct `(s, r)` and `(r, o)` side
//!    queries (first-appearance order, so grouping is deterministic);
//! 2. scores each distinct query **exactly once** through the model's tiled
//!    [`score_objects_batch`](KgeModel::score_objects_batch) /
//!    [`score_subjects_batch`](KgeModel::score_subjects_batch) kernels;
//! 3. resolves every dependent triple's rank from the shared score row;
//! 4. parallelises across *query groups* (not triples) with crossbeam
//!    scoped workers and a deterministic merge — each (triple, side) slot
//!    has exactly one writer, so results are identical at any thread count.
//!
//! Scores from the batched kernels are bit-identical to the single-query
//! kernels (see `kgfd_embed::batch`), so the ranks produced here are
//! *equal* — not merely close — to [`crate::rank_triple`]'s.
//!
//! Observability: each pass records `eval.rank.total_queries`,
//! `eval.rank.distinct_queries`, the `eval.rank.dedup_ratio` gauge, and a
//! per-tile `eval.rank.batch_kernel_us` histogram via `kgfd-obs`.

use crate::{rank_with_exclusions, TripleRanks};
use fxhash::{FxBuildHasher, FxHashMap};
use kgfd_embed::KgeModel;
use kgfd_kg::{EntityId, KnownTriples, RelationId, Triple};

/// Query groups scored per batch-kernel call inside each worker; bounds a
/// worker's scratch buffer at `WORKER_TILE × num_entities` floats while
/// letting the model's internal tile (`kgfd_embed::batch::QUERY_TILE`)
/// amortise the entity-table sweep.
const WORKER_TILE: usize = 16;

/// Work-sharing accounting of one [`BatchRanker`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchRankStats {
    /// Side queries implied by the input (two per triple).
    pub total_queries: u64,
    /// Distinct `(s, r)` plus distinct `(r, o)` queries actually scored.
    pub distinct_queries: u64,
}

impl BatchRankStats {
    /// `total / distinct` — how much entity-sweep work deduplication saved
    /// (1.0 = every query unique; discovery-shaped inputs reach ~16×).
    pub fn dedup_ratio(&self) -> f64 {
        if self.distinct_queries == 0 {
            return 1.0;
        }
        self.total_queries as f64 / self.distinct_queries as f64
    }
}

/// One distinct side query and the triples whose rank it resolves.
struct QueryGroup {
    /// `(subject, relation)` for the object side, `(relation, object)` for
    /// the subject side — raw ids to keep the key `Copy + Hash`.
    key: (u32, u32),
    /// `(triple index, rank target)` pairs sharing this score row.
    dependents: Vec<(u32, EntityId)>,
}

/// Groups `triples` by their distinct side query, preserving
/// first-appearance order (deterministic for a fixed input order).
fn group_queries(triples: &[Triple], object_side: bool) -> Vec<QueryGroup> {
    let mut index: FxHashMap<(u32, u32), u32> =
        FxHashMap::with_capacity_and_hasher(triples.len(), FxBuildHasher::default());
    let mut groups: Vec<QueryGroup> = Vec::new();
    for (i, t) in triples.iter().enumerate() {
        let (key, target) = if object_side {
            ((t.subject.0, t.relation.0), t.object)
        } else {
            ((t.relation.0, t.object.0), t.subject)
        };
        let gi = *index.entry(key).or_insert_with(|| {
            groups.push(QueryGroup {
                key,
                dependents: Vec::new(),
            });
            (groups.len() - 1) as u32
        });
        groups[gi as usize].dependents.push((i as u32, target));
    }
    groups
}

/// Scores a slice of query groups (in tiles of [`WORKER_TILE`]) and resolves
/// every dependent rank from the shared rows. Runs on worker threads.
fn rank_groups(
    model: &dyn KgeModel,
    groups: &[QueryGroup],
    known: Option<&KnownTriples>,
    object_side: bool,
) -> Vec<(u32, f64)> {
    let n = model.num_entities();
    let mut scores = vec![0.0f32; WORKER_TILE.min(groups.len().max(1)) * n];
    let mut results = Vec::with_capacity(groups.iter().map(|g| g.dependents.len()).sum());
    let mut object_queries: Vec<(EntityId, RelationId)> = Vec::with_capacity(WORKER_TILE);
    let mut subject_queries: Vec<(RelationId, EntityId)> = Vec::with_capacity(WORKER_TILE);
    let kernel_us = kgfd_obs::histogram("eval.rank.batch_kernel_us");
    for tile in groups.chunks(WORKER_TILE) {
        let out = &mut scores[..tile.len() * n];
        // Trace-only: one tree node per kernel tile (the histogram record
        // below stays the only observable side effect when tracing is off).
        let tile_span = kgfd_obs::span_traced!("eval.rank.batch_kernel");
        let kernel = std::time::Instant::now();
        if object_side {
            object_queries.clear();
            object_queries.extend(
                tile.iter()
                    .map(|g| (EntityId(g.key.0), RelationId(g.key.1))),
            );
            model.score_objects_batch(&object_queries, out);
        } else {
            subject_queries.clear();
            subject_queries.extend(
                tile.iter()
                    .map(|g| (RelationId(g.key.0), EntityId(g.key.1))),
            );
            model.score_subjects_batch(&subject_queries, out);
        }
        kernel_us.record(kernel.elapsed().as_secs_f64() * 1e6);
        drop(tile_span);
        for (slot, group) in tile.iter().enumerate() {
            let row = &out[slot * n..(slot + 1) * n];
            let exclude = known.map_or(&[][..], |k| {
                if object_side {
                    k.true_objects(EntityId(group.key.0), RelationId(group.key.1))
                } else {
                    k.true_subjects(RelationId(group.key.0), EntityId(group.key.1))
                }
            });
            for &(triple_idx, target) in &group.dependents {
                results.push((triple_idx, rank_with_exclusions(row, target, exclude)));
            }
        }
    }
    results
}

/// Batched, query-deduplicated ranking over a triple slice. See the module
/// docs for the work-sharing model and determinism contract.
pub struct BatchRanker<'a> {
    model: &'a dyn KgeModel,
    threads: usize,
}

impl<'a> BatchRanker<'a> {
    /// A ranker over `model` using up to `threads` workers (clamped to ≥ 1).
    pub fn new(model: &'a dyn KgeModel, threads: usize) -> Self {
        BatchRanker {
            model,
            threads: threads.max(1),
        }
    }

    /// Both-side ranks for every triple, in input order — equal to running
    /// [`crate::rank_triple`] per triple, at a fraction of the entity
    /// sweeps when side queries repeat.
    pub fn rank_all(&self, triples: &[Triple], known: Option<&KnownTriples>) -> Vec<TripleRanks> {
        self.rank_all_with_stats(triples, known).0
    }

    /// [`rank_all`](BatchRanker::rank_all) plus the dedup accounting of the
    /// pass. Also publishes the stats to the `kgfd-obs` registry.
    pub fn rank_all_with_stats(
        &self,
        triples: &[Triple],
        known: Option<&KnownTriples>,
    ) -> (Vec<TripleRanks>, BatchRankStats) {
        let object_groups = group_queries(triples, true);
        let subject_groups = group_queries(triples, false);
        let stats = BatchRankStats {
            total_queries: 2 * triples.len() as u64,
            distinct_queries: (object_groups.len() + subject_groups.len()) as u64,
        };

        let mut object_ranks = vec![0.0f64; triples.len()];
        let mut subject_ranks = vec![0.0f64; triples.len()];
        self.rank_side(&object_groups, known, true, &mut object_ranks);
        self.rank_side(&subject_groups, known, false, &mut subject_ranks);

        if !triples.is_empty() {
            kgfd_obs::counter("eval.rank.total_queries").add(stats.total_queries);
            kgfd_obs::counter("eval.rank.distinct_queries").add(stats.distinct_queries);
            kgfd_obs::gauge("eval.rank.dedup_ratio").set(stats.dedup_ratio());
        }

        let ranks = subject_ranks
            .into_iter()
            .zip(object_ranks)
            .map(|(subject, object)| TripleRanks { subject, object })
            .collect();
        (ranks, stats)
    }

    /// Ranks one corruption side, splitting the query groups across workers
    /// in contiguous chunks. Every dependent `(triple, side)` slot is
    /// written exactly once, so the merge is order-insensitive and the
    /// output identical at any thread count.
    fn rank_side(
        &self,
        groups: &[QueryGroup],
        known: Option<&KnownTriples>,
        object_side: bool,
        out: &mut [f64],
    ) {
        if self.threads == 1 || groups.len() < 2 * self.threads {
            for (triple_idx, rank) in rank_groups(self.model, groups, known, object_side) {
                out[triple_idx as usize] = rank;
            }
            return;
        }
        let chunk = groups.len().div_ceil(self.threads);
        // Query-group workers inherit the dispatching thread's innermost
        // span (e.g. `discover.evaluation`) so their kernel-tile spans stay
        // attached to the tree.
        let parent = kgfd_obs::current_span_handle();
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = groups
                .chunks(chunk)
                .map(|part| {
                    scope.spawn(move |_| {
                        let _attach = parent.map(|p| p.enter());
                        rank_groups(self.model, part, known, object_side)
                    })
                })
                .collect();
            for h in handles {
                for (triple_idx, rank) in h.join().expect("batch ranking worker panicked") {
                    out[triple_idx as usize] = rank;
                }
            }
        })
        .expect("crossbeam scope failed");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgfd_embed::{new_model, ModelKind};

    fn dup_heavy_triples() -> Vec<Triple> {
        // A mesh-grid-shaped workload: 4 subjects × 4 objects over 2
        // relations → 32 triples, 8 distinct queries per side.
        let mut triples = Vec::new();
        for r in 0..2u32 {
            for s in 0..4u32 {
                for o in 4..8u32 {
                    triples.push(Triple::new(s, r, o));
                }
            }
        }
        triples
    }

    #[test]
    fn grouping_counts_distinct_side_queries() {
        let triples = dup_heavy_triples();
        let m = new_model(ModelKind::DistMult, 10, 2, 8, 3);
        let (_, stats) = BatchRanker::new(m.as_ref(), 1).rank_all_with_stats(&triples, None);
        assert_eq!(stats.total_queries, 64);
        assert_eq!(stats.distinct_queries, 16);
        assert!((stats.dedup_ratio() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn matches_scalar_ranks_exactly() {
        let triples = dup_heavy_triples();
        let m = new_model(ModelKind::ComplEx, 10, 2, 8, 3);
        let batched = BatchRanker::new(m.as_ref(), 1).rank_all(&triples, None);
        let known = KnownTriples::from_slices([&triples[..]]);
        let batched_filtered = BatchRanker::new(m.as_ref(), 1).rank_all(&triples, Some(&known));
        let mut scratch = crate::RankScratch::new(10);
        for (i, &t) in triples.iter().enumerate() {
            let raw = crate::rank_triple(m.as_ref(), t, None, &mut scratch);
            let filt = crate::rank_triple(m.as_ref(), t, Some(&known), &mut scratch);
            assert_eq!(batched[i], raw);
            assert_eq!(batched_filtered[i], filt);
        }
    }

    #[test]
    fn thread_count_does_not_change_ranks() {
        let triples = dup_heavy_triples();
        let m = new_model(ModelKind::TransE, 10, 2, 8, 3);
        let one = BatchRanker::new(m.as_ref(), 1).rank_all(&triples, None);
        let four = BatchRanker::new(m.as_ref(), 4).rank_all(&triples, None);
        assert_eq!(one, four);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let m = new_model(ModelKind::DistMult, 4, 1, 4, 0);
        let (ranks, stats) = BatchRanker::new(m.as_ref(), 4).rank_all_with_stats(&[], None);
        assert!(ranks.is_empty());
        assert_eq!(stats.distinct_queries, 0);
        assert_eq!(stats.dedup_ratio(), 1.0);
    }
}
