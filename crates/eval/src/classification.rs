//! Triple classification: label triples true/false by thresholding scores
//! (paper §2.1 — "by setting a threshold on the probability, one can
//! determine whether a triple is true or not and label it by {−1, 1}").
//!
//! Thresholds are tuned per relation on a validation set of positives plus
//! sampled corruptions, then applied to held-out data — the Socher et al.
//! protocol adopted by the KGE literature.

use kgfd_embed::{CorruptSide, KgeModel, NegativeSampler};
use kgfd_kg::{KgError, RelationId, Result, Triple, TripleStore};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Per-relation score thresholds learned from validation data.
#[derive(Debug, Clone)]
pub struct Thresholds {
    by_relation: HashMap<RelationId, f32>,
    global: f32,
}

impl Thresholds {
    /// Tunes thresholds: for each relation, picks the score cut maximizing
    /// accuracy over `positives` and an equal number of sampled corruptions.
    ///
    /// A model that emits a NaN or infinite score fails tuning with
    /// [`KgError::NonFiniteScore`]: a non-finite value would otherwise
    /// scramble the threshold search silently (NaN is unordered, so it used
    /// to derail the candidate sort), and a model producing one is broken in
    /// a way the caller must hear about.
    pub fn tune(
        model: &dyn KgeModel,
        positives: &[Triple],
        filter: &TripleStore,
        seed: u64,
    ) -> Result<Self> {
        let mut rng = StdRng::seed_from_u64(seed);
        let sampler = NegativeSampler::new(model.num_entities());
        let mut by_rel: HashMap<RelationId, Vec<(f32, bool)>> = HashMap::new();
        let mut all: Vec<(f32, bool)> = Vec::with_capacity(positives.len() * 2);
        for &t in positives {
            let neg = sampler.corrupt(t, CorruptSide::Both, Some(filter), &mut rng);
            for (f, is_pos) in [(model.score(t), true), (model.score(neg), false)] {
                if !f.is_finite() {
                    return Err(KgError::NonFiniteScore {
                        index: all.len(),
                        value: f as f64,
                    });
                }
                by_rel.entry(t.relation).or_default().push((f, is_pos));
                all.push((f, is_pos));
            }
        }
        let global = best_threshold(&mut all);
        let by_relation = by_rel
            .into_iter()
            .map(|(r, mut scored)| (r, best_threshold(&mut scored)))
            .collect();
        Ok(Thresholds {
            by_relation,
            global,
        })
    }

    /// The threshold for `r` (falling back to the global one for relations
    /// unseen during tuning).
    pub fn for_relation(&self, r: RelationId) -> f32 {
        self.by_relation.get(&r).copied().unwrap_or(self.global)
    }

    /// Classifies one triple.
    pub fn classify(&self, model: &dyn KgeModel, t: Triple) -> bool {
        model.score(t) >= self.for_relation(t.relation)
    }

    /// Accuracy over labelled triples.
    pub fn accuracy(&self, model: &dyn KgeModel, labelled: &[(Triple, bool)]) -> f64 {
        if labelled.is_empty() {
            return 0.0;
        }
        let correct = labelled
            .iter()
            .filter(|&&(t, label)| self.classify(model, t) == label)
            .count();
        correct as f64 / labelled.len() as f64
    }
}

/// Midpoint threshold maximizing accuracy over `(score, is_positive)` pairs.
///
/// Sorts with [`f32::total_cmp`]: a total order, so even if a NaN slips past
/// the caller's validation it lands deterministically at the end of the sort
/// instead of scrambling it (`partial_cmp(..).unwrap_or(Equal)`, the old
/// comparator, made NaN compare "equal" to everything — one NaN anywhere
/// left the slice arbitrarily ordered and the chosen threshold garbage).
fn best_threshold(scored: &mut [(f32, bool)]) -> f32 {
    if scored.is_empty() {
        return 0.0;
    }
    scored.sort_by(|a, b| a.0.total_cmp(&b.0));
    let total_pos = scored.iter().filter(|(_, p)| *p).count();
    // Threshold below everything classifies all as positive.
    let mut best_correct = total_pos;
    let mut best_t = scored[0].0 - 1.0;
    let mut neg_below = 0usize;
    let mut pos_below = 0usize;
    for i in 0..scored.len() {
        if scored[i].1 {
            pos_below += 1;
        } else {
            neg_below += 1;
        }
        // Candidate threshold just above scored[i] — which only exists when
        // the next score is distinct (inside a run of duplicates no cut can
        // separate them, and pretending one could overstates the accuracy).
        if i + 1 < scored.len() && scored[i].0 == scored[i + 1].0 {
            continue;
        }
        let correct = neg_below + (total_pos - pos_below);
        if correct > best_correct {
            best_correct = correct;
            best_t = if i + 1 < scored.len() {
                let mid = 0.5 * (scored[i].0 + scored[i + 1].0);
                // Adjacent floats can round the midpoint back onto
                // scored[i], which `score >= t` would misclassify; the next
                // score itself is then the exact cut.
                if mid > scored[i].0 {
                    mid
                } else {
                    scored[i + 1].0
                }
            } else {
                scored[i].0 + 1.0
            };
        }
    }
    best_t
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgfd_datasets::toy_biomedical;
    use kgfd_embed::{train, ModelKind, TrainConfig};

    #[test]
    fn best_threshold_separates_cleanly_separable_data() {
        let mut scored = vec![(0.1, false), (0.2, false), (0.8, true), (0.9, true)];
        let t = best_threshold(&mut scored);
        assert!(t > 0.2 && t < 0.8, "threshold {t} should split the gap");
    }

    #[test]
    fn best_threshold_handles_all_positive() {
        let mut scored = vec![(0.5, true), (0.6, true)];
        let t = best_threshold(&mut scored);
        assert!(t <= 0.5);
    }

    #[test]
    fn classification_beats_chance_on_toy_graph() {
        let data = toy_biomedical();
        let config = TrainConfig {
            dim: 16,
            epochs: 50,
            seed: 3,
            ..TrainConfig::default()
        };
        let (model, _) = train(ModelKind::ComplEx, &data.train, &config);
        let thresholds =
            Thresholds::tune(model.as_ref(), data.train.triples(), &data.train, 9).unwrap();

        // Labelled evaluation set: train positives + one corruption each.
        let mut rng = StdRng::seed_from_u64(17);
        let sampler = NegativeSampler::new(data.train.num_entities());
        let labelled: Vec<(Triple, bool)> = data
            .train
            .triples()
            .iter()
            .flat_map(|&t| {
                let neg = sampler.corrupt(t, CorruptSide::Both, Some(&data.train), &mut rng);
                [(t, true), (neg, false)]
            })
            .collect();
        let acc = thresholds.accuracy(model.as_ref(), &labelled);
        assert!(acc > 0.7, "accuracy {acc} should beat chance clearly");
    }

    #[test]
    fn unseen_relation_falls_back_to_global() {
        let data = toy_biomedical();
        let (model, _) = train(
            ModelKind::DistMult,
            &data.train,
            &TrainConfig {
                epochs: 2,
                ..TrainConfig::default()
            },
        );
        let thresholds =
            Thresholds::tune(model.as_ref(), &data.train.triples()[..4], &data.train, 1).unwrap();
        // RelationId(99) was never tuned.
        let t = thresholds.for_relation(RelationId(99));
        assert!(t.is_finite());
    }

    /// A model whose every score is NaN — the pathology the typed error
    /// exists for.
    struct NanModel {
        inner: Box<dyn KgeModel>,
    }

    impl KgeModel for NanModel {
        fn kind(&self) -> ModelKind {
            self.inner.kind()
        }
        fn num_entities(&self) -> usize {
            self.inner.num_entities()
        }
        fn num_relations(&self) -> usize {
            self.inner.num_relations()
        }
        fn dim(&self) -> usize {
            self.inner.dim()
        }
        fn config(&self) -> kgfd_embed::ModelConfig {
            self.inner.config()
        }
        fn score(&self, _t: Triple) -> f32 {
            f32::NAN
        }
        fn score_objects(&self, _s: kgfd_kg::EntityId, _r: RelationId, out: &mut [f32]) {
            out.fill(f32::NAN);
        }
        fn score_subjects(&self, _r: RelationId, _o: kgfd_kg::EntityId, out: &mut [f32]) {
            out.fill(f32::NAN);
        }
        fn backward(&self, t: Triple, upstream: f32, grads: &mut kgfd_embed::Gradients) {
            self.inner.backward(t, upstream, grads)
        }
        fn params(&self) -> &kgfd_embed::Parameters {
            self.inner.params()
        }
        fn params_mut(&mut self) -> &mut kgfd_embed::Parameters {
            self.inner.params_mut()
        }
    }

    #[test]
    fn nan_scores_are_rejected_with_a_typed_error() {
        let data = toy_biomedical();
        let (inner, _) = train(
            ModelKind::DistMult,
            &data.train,
            &TrainConfig {
                epochs: 1,
                ..TrainConfig::default()
            },
        );
        let model = NanModel { inner };
        let err = Thresholds::tune(&model, data.train.triples(), &data.train, 1)
            .map(|_| ())
            .expect_err("NaN scores must fail tuning");
        assert!(
            matches!(err, KgError::NonFiniteScore { index: 0, .. }),
            "{err}"
        );
    }

    /// Exhaustive reference: try a cut below everything and just above every
    /// score, count accuracy directly.
    fn brute_force_best_accuracy(scored: &[(f32, bool)]) -> usize {
        let accuracy_at = |cut: f32| scored.iter().filter(|&&(f, p)| (f >= cut) == p).count();
        let mut best = accuracy_at(f32::NEG_INFINITY);
        for &(f, _) in scored {
            // Thresholds classify via `score >= t`, so "just above f" is the
            // next representable float.
            best = best.max(accuracy_at(next_up(f)));
        }
        best
    }

    fn next_up(f: f32) -> f32 {
        let bits = f.to_bits();
        f32::from_bits(if f >= 0.0 { bits + 1 } else { bits - 1 })
    }

    fn accuracy_of(scored: &[(f32, bool)], threshold: f32) -> usize {
        scored
            .iter()
            .filter(|&&(f, p)| (f >= threshold) == p)
            .count()
    }

    proptest::proptest! {
        /// The sort-and-sweep search must achieve exactly the accuracy of an
        /// exhaustive scan over all candidate cuts, for arbitrary finite
        /// score/label mixtures (duplicates and sign mixes included).
        #[test]
        fn best_threshold_matches_brute_force(
            scored in proptest::collection::vec(
                (-100i32..100, proptest::any::<bool>()),
                1..40,
            )
        ) {
            // Quantized scores force plenty of exact duplicates.
            let mut scored: Vec<(f32, bool)> = scored
                .into_iter()
                .map(|(q, p)| (q as f32 * 0.25, p))
                .collect();
            let reference = brute_force_best_accuracy(&scored);
            let t = best_threshold(&mut scored);
            let achieved = accuracy_of(&scored, t);
            proptest::prop_assert_eq!(
                achieved,
                reference,
                "threshold {} achieves {} correct, brute force finds {}",
                t,
                achieved,
                reference
            );
        }
    }
}
