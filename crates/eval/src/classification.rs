//! Triple classification: label triples true/false by thresholding scores
//! (paper §2.1 — "by setting a threshold on the probability, one can
//! determine whether a triple is true or not and label it by {−1, 1}").
//!
//! Thresholds are tuned per relation on a validation set of positives plus
//! sampled corruptions, then applied to held-out data — the Socher et al.
//! protocol adopted by the KGE literature.

use kgfd_embed::{CorruptSide, KgeModel, NegativeSampler};
use kgfd_kg::{RelationId, Triple, TripleStore};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Per-relation score thresholds learned from validation data.
#[derive(Debug, Clone)]
pub struct Thresholds {
    by_relation: HashMap<RelationId, f32>,
    global: f32,
}

impl Thresholds {
    /// Tunes thresholds: for each relation, picks the score cut maximizing
    /// accuracy over `positives` and an equal number of sampled corruptions.
    pub fn tune(
        model: &dyn KgeModel,
        positives: &[Triple],
        filter: &TripleStore,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let sampler = NegativeSampler::new(model.num_entities());
        let mut by_rel: HashMap<RelationId, Vec<(f32, bool)>> = HashMap::new();
        let mut all: Vec<(f32, bool)> = Vec::with_capacity(positives.len() * 2);
        for &t in positives {
            let neg = sampler.corrupt(t, CorruptSide::Both, Some(filter), &mut rng);
            let fp = model.score(t);
            let fn_ = model.score(neg);
            by_rel.entry(t.relation).or_default().push((fp, true));
            by_rel.entry(t.relation).or_default().push((fn_, false));
            all.push((fp, true));
            all.push((fn_, false));
        }
        let global = best_threshold(&mut all);
        let by_relation = by_rel
            .into_iter()
            .map(|(r, mut scored)| (r, best_threshold(&mut scored)))
            .collect();
        Thresholds {
            by_relation,
            global,
        }
    }

    /// The threshold for `r` (falling back to the global one for relations
    /// unseen during tuning).
    pub fn for_relation(&self, r: RelationId) -> f32 {
        self.by_relation.get(&r).copied().unwrap_or(self.global)
    }

    /// Classifies one triple.
    pub fn classify(&self, model: &dyn KgeModel, t: Triple) -> bool {
        model.score(t) >= self.for_relation(t.relation)
    }

    /// Accuracy over labelled triples.
    pub fn accuracy(&self, model: &dyn KgeModel, labelled: &[(Triple, bool)]) -> f64 {
        if labelled.is_empty() {
            return 0.0;
        }
        let correct = labelled
            .iter()
            .filter(|&&(t, label)| self.classify(model, t) == label)
            .count();
        correct as f64 / labelled.len() as f64
    }
}

/// Midpoint threshold maximizing accuracy over `(score, is_positive)` pairs.
fn best_threshold(scored: &mut [(f32, bool)]) -> f32 {
    if scored.is_empty() {
        return 0.0;
    }
    scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let total_pos = scored.iter().filter(|(_, p)| *p).count();
    // Threshold below everything classifies all as positive.
    let mut best_correct = total_pos;
    let mut best_t = scored[0].0 - 1.0;
    let mut neg_below = 0usize;
    let mut pos_below = 0usize;
    for i in 0..scored.len() {
        if scored[i].1 {
            pos_below += 1;
        } else {
            neg_below += 1;
        }
        // Candidate threshold just above scored[i].
        let correct = neg_below + (total_pos - pos_below);
        if correct > best_correct {
            best_correct = correct;
            best_t = if i + 1 < scored.len() {
                0.5 * (scored[i].0 + scored[i + 1].0)
            } else {
                scored[i].0 + 1.0
            };
        }
    }
    best_t
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgfd_datasets::toy_biomedical;
    use kgfd_embed::{train, ModelKind, TrainConfig};

    #[test]
    fn best_threshold_separates_cleanly_separable_data() {
        let mut scored = vec![(0.1, false), (0.2, false), (0.8, true), (0.9, true)];
        let t = best_threshold(&mut scored);
        assert!(t > 0.2 && t < 0.8, "threshold {t} should split the gap");
    }

    #[test]
    fn best_threshold_handles_all_positive() {
        let mut scored = vec![(0.5, true), (0.6, true)];
        let t = best_threshold(&mut scored);
        assert!(t <= 0.5);
    }

    #[test]
    fn classification_beats_chance_on_toy_graph() {
        let data = toy_biomedical();
        let config = TrainConfig {
            dim: 16,
            epochs: 50,
            seed: 3,
            ..TrainConfig::default()
        };
        let (model, _) = train(ModelKind::ComplEx, &data.train, &config);
        let thresholds = Thresholds::tune(model.as_ref(), data.train.triples(), &data.train, 9);

        // Labelled evaluation set: train positives + one corruption each.
        let mut rng = StdRng::seed_from_u64(17);
        let sampler = NegativeSampler::new(data.train.num_entities());
        let labelled: Vec<(Triple, bool)> = data
            .train
            .triples()
            .iter()
            .flat_map(|&t| {
                let neg = sampler.corrupt(t, CorruptSide::Both, Some(&data.train), &mut rng);
                [(t, true), (neg, false)]
            })
            .collect();
        let acc = thresholds.accuracy(model.as_ref(), &labelled);
        assert!(acc > 0.7, "accuracy {acc} should beat chance clearly");
    }

    #[test]
    fn unseen_relation_falls_back_to_global() {
        let data = toy_biomedical();
        let (model, _) = train(
            ModelKind::DistMult,
            &data.train,
            &TrainConfig {
                epochs: 2,
                ..TrainConfig::default()
            },
        );
        let thresholds =
            Thresholds::tune(model.as_ref(), &data.train.triples()[..4], &data.train, 1);
        // RelationId(99) was never tuned.
        let t = thresholds.for_relation(RelationId(99));
        assert!(t.is_finite());
    }
}
