//! A held-out evaluation protocol for fact discovery.
//!
//! The paper's §6 observes that fact discovery has *no* evaluation protocol:
//! the train/valid/test split protocol of link prediction doesn't transfer,
//! because (a) discovery is not exhaustive, and (b) a triple missing from
//! the test set isn't necessarily false. This module implements the natural
//! first protocol anyway — measuring how many *known-true held-out* triples
//! a discovery run surfaces — with both caveats quantified rather than
//! ignored: [`HeldOutReport::reachable`] counts how many held-out triples
//! the sampler could even have generated (caveat a), and discovered facts
//! outside the held-out set are reported as `unverifiable`, not false
//! (caveat b).

use kgfd_kg::{Triple, TripleStore};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Outcome of scoring a discovery run against held-out truths.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HeldOutReport {
    /// Held-out triples surfaced by the run (verified discoveries).
    pub hits: usize,
    /// Held-out triples total.
    pub held_out: usize,
    /// Held-out triples whose subject and object are in the training-side
    /// pools of their relation — the ones a pool-restricted sampler could
    /// have produced at all.
    pub reachable: usize,
    /// Discovered facts that are not held-out truths. *Not* false: merely
    /// unverifiable under this protocol.
    pub unverifiable: usize,
    /// `hits / held_out` — overall recall of held-out truths.
    pub recall: f64,
    /// `hits / reachable` — recall among the triples the sampler could
    /// reach; isolates ranking quality from pool coverage.
    pub reachable_recall: f64,
    /// `hits / (hits + unverifiable)` — lower bound on precision.
    pub precision_lower_bound: f64,
}

/// Scores discovered `facts` against `held_out` truths, using `train` to
/// determine pool reachability.
pub fn score_against_held_out(
    facts: &[Triple],
    held_out: &[Triple],
    train: &TripleStore,
) -> HeldOutReport {
    let truth: HashSet<Triple> = held_out.iter().copied().collect();
    let hits = facts.iter().filter(|t| truth.contains(t)).count();
    let unverifiable = facts.len() - hits;

    let reachable = held_out
        .iter()
        .filter(|t| {
            train
                .subject_index(t.relation)
                .entities
                .binary_search(&t.subject)
                .is_ok()
                && train
                    .object_index(t.relation)
                    .entities
                    .binary_search(&t.object)
                    .is_ok()
        })
        .count();

    let ratio = |num: usize, den: usize| {
        if den == 0 {
            0.0
        } else {
            num as f64 / den as f64
        }
    };
    HeldOutReport {
        hits,
        held_out: held_out.len(),
        reachable,
        unverifiable,
        recall: ratio(hits, held_out.len()),
        reachable_recall: ratio(hits, reachable),
        precision_lower_bound: ratio(hits, facts.len()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train() -> TripleStore {
        TripleStore::new(
            6,
            2,
            vec![
                Triple::new(0u32, 0u32, 1u32),
                Triple::new(1u32, 0u32, 2u32),
                Triple::new(3u32, 1u32, 4u32),
            ],
        )
        .unwrap()
    }

    #[test]
    fn hits_and_unverifiable_partition_the_facts() {
        let held_out = [Triple::new(0u32, 0u32, 2u32), Triple::new(1u32, 0u32, 1u32)];
        let facts = [
            Triple::new(0u32, 0u32, 2u32), // hit
            Triple::new(1u32, 0u32, 1u32), // hit
            Triple::new(0u32, 1u32, 4u32), // unverifiable
        ];
        let r = score_against_held_out(&facts, &held_out, &train());
        assert_eq!(r.hits, 2);
        assert_eq!(r.unverifiable, 1);
        assert_eq!(r.recall, 1.0);
        assert!((r.precision_lower_bound - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn reachability_respects_per_relation_pools() {
        // (5, r0, 2): entity 5 never appears as subject of r0 → unreachable.
        // (0, r0, 2): subject 0 and object 2 both in r0 pools → reachable.
        let held_out = [Triple::new(5u32, 0u32, 2u32), Triple::new(0u32, 0u32, 2u32)];
        let r = score_against_held_out(&[], &held_out, &train());
        assert_eq!(r.reachable, 1);
        assert_eq!(r.recall, 0.0);
        assert_eq!(r.reachable_recall, 0.0);
    }

    #[test]
    fn empty_inputs_do_not_divide_by_zero() {
        let r = score_against_held_out(&[], &[], &train());
        assert_eq!(r.recall, 0.0);
        assert_eq!(r.precision_lower_bound, 0.0);
    }

    #[test]
    fn reachable_recall_isolates_ranking_from_coverage() {
        let held_out = [
            Triple::new(5u32, 0u32, 2u32), // unreachable
            Triple::new(0u32, 0u32, 2u32), // reachable, found
        ];
        let facts = [Triple::new(0u32, 0u32, 2u32)];
        let r = score_against_held_out(&facts, &held_out, &train());
        assert_eq!(r.recall, 0.5);
        assert_eq!(r.reachable_recall, 1.0, "found everything it could reach");
    }
}
