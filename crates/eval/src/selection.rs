//! Model selection: validation-driven early stopping and grid search —
//! the "Model Training" step of the paper's workflow (§3.2), where each
//! dataset × embedding pair is tuned "for instance through grid search"
//! (LibKGE's grid-search syntax is called out in §4.1.1 as a selection
//! reason).

use crate::evaluate_ranking;
use kgfd_embed::{KgeModel, LossKind, ModelKind, OptimizerKind, TrainConfig, TrainSession};
use kgfd_kg::{KnownTriples, Triple, TripleStore};
use serde::{Deserialize, Serialize};

/// Early-stopping policy on validation MRR.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EarlyStopping {
    /// Evaluate every this many epochs.
    pub check_every: usize,
    /// Stop after this many consecutive non-improving checks.
    pub patience: usize,
    /// Minimum MRR improvement that counts as progress.
    pub min_delta: f64,
}

impl Default for EarlyStopping {
    fn default() -> Self {
        EarlyStopping {
            check_every: 5,
            patience: 2,
            min_delta: 1e-4,
        }
    }
}

/// Outcome of a validation-monitored training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SelectionStats {
    /// Validation MRR at each checkpoint.
    pub checkpoints: Vec<f64>,
    /// Best validation MRR seen (the returned model's parameters).
    pub best_mrr: f64,
    /// Total epochs actually trained.
    pub epochs_trained: usize,
}

/// Trains with early stopping on validation MRR. The returned model carries
/// the parameters of the *best* checkpoint, not the last one.
///
/// The loop drives one continuous [`TrainSession`] and merely pauses it at
/// every `check_every` boundary to evaluate — so the training trajectory is
/// *exactly* the plain [`kgfd_embed::train`] trajectory truncated at the
/// stopping point, bit for bit, independent of `check_every`. Two historical
/// defects made that false: each slice used to restart as its own
/// `train_into` call, which (a) re-derived its seed as
/// `seed + epochs_trained` — so adjacent user seeds collided onto shared RNG
/// streams — and (b) rebuilt the optimizer from zeroed state at every
/// boundary, silently discarding Adam's moments and step counter and making
/// the result depend on `check_every`. The regression tests below pin both
/// fixes.
pub fn train_with_early_stopping(
    kind: ModelKind,
    store: &TripleStore,
    valid: &[Triple],
    config: &TrainConfig,
    stopping: EarlyStopping,
) -> (Box<dyn KgeModel>, SelectionStats) {
    assert!(stopping.check_every > 0, "check_every must be positive");
    let mut session =
        TrainSession::new(kind, store, config).expect("invalid TrainConfig for early stopping");
    let known = KnownTriples::from_slices([store.triples(), valid]);

    let mut best_params = session.model().params().clone();
    let mut best_mrr = f64::NEG_INFINITY;
    let mut checkpoints = Vec::new();
    let mut bad_checks = 0usize;

    while !session.is_complete() {
        let slice = stopping
            .check_every
            .min(config.epochs - session.epochs_done());
        for _ in 0..slice {
            session.run_epoch();
        }

        let mrr = evaluate_ranking(session.model(), valid, Some(&known), 2).mrr;
        checkpoints.push(mrr);
        if mrr > best_mrr + stopping.min_delta {
            best_mrr = mrr;
            best_params = session.model().params().clone();
            bad_checks = 0;
        } else {
            bad_checks += 1;
            if bad_checks >= stopping.patience {
                break;
            }
        }
    }
    let epochs_trained = session.epochs_done();
    session.set_params(best_params);
    let (model, _) = session.into_model();
    (
        model,
        SelectionStats {
            checkpoints,
            best_mrr: if best_mrr.is_finite() { best_mrr } else { 0.0 },
            epochs_trained,
        },
    )
}

/// A hyperparameter grid for [`grid_search`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchSpace {
    /// Embedding widths to try.
    pub dims: Vec<usize>,
    /// Learning rates to try (Adam).
    pub learning_rates: Vec<f32>,
    /// Loss functions to try.
    pub losses: Vec<LossKind>,
}

impl Default for SearchSpace {
    fn default() -> Self {
        SearchSpace {
            dims: vec![16, 32],
            learning_rates: vec![0.003, 0.01, 0.03],
            losses: vec![
                LossKind::MarginRanking { margin: 1.0 },
                LossKind::BinaryCrossEntropy,
            ],
        }
    }
}

/// One evaluated grid point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchResult {
    /// The configuration evaluated.
    pub config: TrainConfig,
    /// Its validation MRR.
    pub valid_mrr: f64,
}

/// Exhaustive grid search over `space`, selecting by validation MRR.
/// Returns all evaluated points sorted best-first.
pub fn grid_search(
    kind: ModelKind,
    store: &TripleStore,
    valid: &[Triple],
    base: &TrainConfig,
    space: &SearchSpace,
) -> Vec<SearchResult> {
    let known = KnownTriples::from_slices([store.triples(), valid]);
    let mut results = Vec::new();
    for &dim in &space.dims {
        for &lr in &space.learning_rates {
            for &loss in &space.losses {
                let config = TrainConfig {
                    dim,
                    optimizer: OptimizerKind::Adam { lr },
                    loss,
                    ..base.clone()
                };
                let (model, _) = kgfd_embed::train(kind, store, &config);
                let valid_mrr = evaluate_ranking(model.as_ref(), valid, Some(&known), 2).mrr;
                results.push(SearchResult { config, valid_mrr });
            }
        }
    }
    results.sort_by(|a, b| b.valid_mrr.total_cmp(&a.valid_mrr));
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgfd_datasets::toy_biomedical;

    #[test]
    fn early_stopping_returns_best_checkpoint() {
        let data = toy_biomedical();
        let config = TrainConfig {
            dim: 16,
            epochs: 30,
            seed: 3,
            ..TrainConfig::default()
        };
        let stopping = EarlyStopping {
            check_every: 5,
            patience: 2,
            min_delta: 1e-4,
        };
        let (model, stats) = train_with_early_stopping(
            ModelKind::DistMult,
            &data.train,
            &data.valid,
            &config,
            stopping,
        );
        assert!(!stats.checkpoints.is_empty());
        assert!(stats.epochs_trained <= 30);
        assert!(stats.best_mrr >= stats.checkpoints[0] - 1e-9);
        // Returned model reproduces the best checkpoint's MRR.
        let known = KnownTriples::from_slices([data.train.triples(), &data.valid[..]]);
        let mrr = evaluate_ranking(model.as_ref(), &data.valid, Some(&known), 2).mrr;
        assert!((mrr - stats.best_mrr).abs() < 1e-9);
    }

    #[test]
    fn early_stopping_halts_on_plateau() {
        let data = toy_biomedical();
        let config = TrainConfig {
            dim: 8,
            epochs: 1000, // would take long without stopping
            seed: 1,
            ..TrainConfig::default()
        };
        let stopping = EarlyStopping {
            check_every: 2,
            patience: 1,
            min_delta: 0.5, // nothing counts as progress
        };
        let (_, stats) = train_with_early_stopping(
            ModelKind::TransE,
            &data.train,
            &data.valid,
            &config,
            stopping,
        );
        assert!(
            stats.epochs_trained <= 4,
            "plateau must stop training early, got {}",
            stats.epochs_trained
        );
    }

    /// With patience high enough that nothing stops early and
    /// `check_every = epochs`, early stopping is one uninterrupted slice —
    /// it must reproduce a plain `train` call bit for bit. This pins the
    /// fix for the per-slice optimizer reset (Adam's moments used to be
    /// zeroed at every boundary) and the per-slice seed re-derivation.
    #[test]
    fn check_every_equal_to_epochs_matches_plain_train_bitwise() {
        let data = toy_biomedical();
        let config = TrainConfig {
            dim: 12,
            epochs: 10,
            seed: 21,
            ..TrainConfig::default()
        };
        let (plain, plain_stats) = kgfd_embed::train(ModelKind::ComplEx, &data.train, &config);
        let stopping = EarlyStopping {
            check_every: config.epochs,
            patience: usize::MAX,
            min_delta: 0.0,
        };
        let (selected, stats) = train_with_early_stopping(
            ModelKind::ComplEx,
            &data.train,
            &data.valid,
            &config,
            stopping,
        );
        assert_eq!(stats.epochs_trained, config.epochs);
        let _ = plain_stats;
        for t in 0..plain.params().num_tables() {
            assert_eq!(
                plain.params().table(t).data(),
                selected.params().table(t).data(),
                "table {t} must match plain training bitwise"
            );
        }
    }

    /// The training path must not depend on `check_every` at all: pausing
    /// to evaluate every epoch and pausing every 5 epochs walk the same
    /// trajectory, so with stopping disabled they end in the same place.
    #[test]
    fn check_every_does_not_change_the_training_path() {
        let data = toy_biomedical();
        let config = TrainConfig {
            dim: 8,
            epochs: 6,
            seed: 4,
            ..TrainConfig::default()
        };
        let run = |check_every: usize| {
            let stopping = EarlyStopping {
                check_every,
                patience: usize::MAX,
                min_delta: 0.0,
            };
            train_with_early_stopping(
                ModelKind::DistMult,
                &data.train,
                &data.valid,
                &config,
                stopping,
            )
        };
        let (_, stats_fine) = run(1);
        let (_, stats_coarse) = run(6);
        assert_eq!(stats_fine.epochs_trained, stats_coarse.epochs_trained);
        assert_eq!(
            stats_fine.checkpoints.last().copied().unwrap(),
            stats_coarse.checkpoints.last().copied().unwrap(),
            "the final validation MRR must be independent of check_every"
        );
    }

    /// Adjacent user seeds used to collide: slice k of a seed-s run derived
    /// its RNG streams from `s + k·check_every`, identical to slice k−1 of a
    /// seed-(s + check_every) run. The continuous session uses the user
    /// seed exactly once, so adjacent seeds walk fully distinct paths.
    #[test]
    fn adjacent_seeds_produce_distinct_training_paths() {
        let data = toy_biomedical();
        let base = TrainConfig {
            dim: 8,
            epochs: 4,
            seed: 7,
            ..TrainConfig::default()
        };
        let stopping = EarlyStopping {
            check_every: 1,
            patience: usize::MAX,
            min_delta: 0.0,
        };
        let mut next = base.clone();
        next.seed = base.seed + 1;
        let (a, _) = train_with_early_stopping(
            ModelKind::DistMult,
            &data.train,
            &data.valid,
            &base,
            stopping,
        );
        let (b, _) = train_with_early_stopping(
            ModelKind::DistMult,
            &data.train,
            &data.valid,
            &next,
            stopping,
        );
        assert_ne!(
            a.params().table(0).data(),
            b.params().table(0).data(),
            "adjacent seeds must not share training trajectories"
        );
    }

    #[test]
    fn grid_search_ranks_configurations() {
        let data = toy_biomedical();
        let base = TrainConfig {
            epochs: 8,
            seed: 2,
            ..TrainConfig::default()
        };
        let space = SearchSpace {
            dims: vec![8, 16],
            learning_rates: vec![0.01],
            losses: vec![LossKind::BinaryCrossEntropy],
        };
        let results = grid_search(ModelKind::ComplEx, &data.train, &data.valid, &base, &space);
        assert_eq!(results.len(), 2);
        assert!(
            results[0].valid_mrr >= results[1].valid_mrr,
            "sorted best-first"
        );
    }
}
