//! Aggregate ranking metrics: MRR (paper Eq. 7), Hits@k, mean rank.

use serde::{Deserialize, Serialize};

/// Mean reciprocal rank: `(1/|Q|) Σ 1/rankᵢ` (paper Eq. 7).
/// Returns 0 for an empty set (no facts discovered → no quality signal).
pub fn mrr(ranks: &[f64]) -> f64 {
    if ranks.is_empty() {
        return 0.0;
    }
    ranks.iter().map(|r| 1.0 / r).sum::<f64>() / ranks.len() as f64
}

/// Fraction of ranks ≤ k.
pub fn hits_at(ranks: &[f64], k: usize) -> f64 {
    if ranks.is_empty() {
        return 0.0;
    }
    ranks.iter().filter(|&&r| r <= k as f64).count() as f64 / ranks.len() as f64
}

/// Arithmetic mean rank (less robust to outliers than MRR — the reason the
/// paper favors MRR, §3.3).
pub fn mean_rank(ranks: &[f64]) -> f64 {
    if ranks.is_empty() {
        return 0.0;
    }
    ranks.iter().sum::<f64>() / ranks.len() as f64
}

/// The standard bundle of link-prediction metrics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankingSummary {
    /// Mean reciprocal rank over both corruption sides.
    pub mrr: f64,
    /// Hits@1.
    pub hits1: f64,
    /// Hits@3.
    pub hits3: f64,
    /// Hits@10.
    pub hits10: f64,
    /// Mean rank.
    pub mean_rank: f64,
    /// Number of (triple, side) rank observations aggregated.
    pub count: usize,
}

impl RankingSummary {
    /// Aggregates a flat list of side ranks.
    pub fn from_ranks(ranks: &[f64]) -> Self {
        RankingSummary {
            mrr: mrr(ranks),
            hits1: hits_at(ranks, 1),
            hits3: hits_at(ranks, 3),
            hits10: hits_at(ranks, 10),
            mean_rank: mean_rank(ranks),
            count: ranks.len(),
        }
    }
}

impl std::fmt::Display for RankingSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MRR {:.4}  H@1 {:.3}  H@3 {:.3}  H@10 {:.3}  MR {:.1}  (n={})",
            self.mrr, self.hits1, self.hits3, self.hits10, self.mean_rank, self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mrr_matches_hand_computation() {
        // (1/1 + 1/2 + 1/4) / 3 = 7/12
        assert!((mrr(&[1.0, 2.0, 4.0]) - 7.0 / 12.0).abs() < 1e-12);
        assert_eq!(mrr(&[]), 0.0);
    }

    #[test]
    fn paper_top_n_threshold_arithmetic() {
        // §4.2.2: top_n = 500 sets a theoretical MRR floor of 0.002 when
        // every discovered fact ranks exactly 500.
        let ranks = vec![500.0; 10];
        assert!((mrr(&ranks) - 0.002).abs() < 1e-12);
    }

    #[test]
    fn hits_at_k_counts_inclusively() {
        let ranks = [1.0, 3.0, 10.0, 11.0];
        assert_eq!(hits_at(&ranks, 1), 0.25);
        assert_eq!(hits_at(&ranks, 3), 0.5);
        assert_eq!(hits_at(&ranks, 10), 0.75);
        assert_eq!(hits_at(&[], 10), 0.0);
    }

    #[test]
    fn mean_rank_is_outlier_sensitive() {
        // The paper's point: one outlier swings MR but barely moves MRR.
        let clean = [1.0, 1.0, 1.0];
        let outlier = [1.0, 1.0, 1000.0];
        assert!(mean_rank(&outlier) / mean_rank(&clean) > 100.0);
        assert!(mrr(&clean) / mrr(&outlier) < 1.6);
    }

    #[test]
    fn summary_bundles_everything() {
        let s = RankingSummary::from_ranks(&[1.0, 2.0, 20.0]);
        assert_eq!(s.count, 3);
        assert_eq!(s.hits1, 1.0 / 3.0);
        assert!(s.mrr > 0.5);
        assert!(s.to_string().contains("MRR"));
    }
}
