//! The full link-prediction evaluation protocol: rank every test triple
//! against both corruption sides, filtered, in parallel.

use crate::{rank_triple, RankScratch, RankingSummary, TripleRanks};
use kgfd_embed::KgeModel;
use kgfd_kg::{KnownTriples, Triple};

/// Evaluates `model` on `triples` (typically a test split).
///
/// `known` should cover train+valid+test for the standard filtered setting.
/// Work is split across `threads` workers on the persistent `kgfd-pool`;
/// results are deterministic regardless of thread count.
pub fn evaluate_ranking(
    model: &dyn KgeModel,
    triples: &[Triple],
    known: Option<&KnownTriples>,
    threads: usize,
) -> RankingSummary {
    let ranks = rank_all(model, triples, known, threads);
    let flat: Vec<f64> = ranks.iter().flat_map(|r| [r.subject, r.object]).collect();
    RankingSummary::from_ranks(&flat)
}

/// Computes both-side ranks for every triple, in input order.
///
/// Runs the batched, query-deduplicated engine ([`crate::BatchRanker`]):
/// duplicate `(s, r)` / `(r, o)` side queries are scored once and shared.
/// Ranks are identical to the scalar per-triple path
/// ([`rank_all_scalar`]) — the batched kernels are bit-exact — just
/// cheaper whenever queries repeat.
pub fn rank_all(
    model: &dyn KgeModel,
    triples: &[Triple],
    known: Option<&KnownTriples>,
    threads: usize,
) -> Vec<TripleRanks> {
    let start = std::time::Instant::now();
    let ranks = crate::BatchRanker::new(model, threads).rank_all(triples, known);
    let secs = start.elapsed().as_secs_f64();
    kgfd_obs::counter("eval.rank.triples_ranked").add(triples.len() as u64);
    if !triples.is_empty() && secs > 0.0 {
        let rate = triples.len() as f64 / secs;
        kgfd_obs::gauge("eval.rank.triples_per_sec").set(rate);
        kgfd_obs::metric(
            "eval.rank.triples_per_sec",
            rate,
            vec![kgfd_obs::Field::new("triples", triples.len())],
        );
    }
    ranks
}

/// The pre-batching scalar path: two full entity sweeps per triple with no
/// work sharing, parallelised over triples. Kept as the differential-test
/// oracle and benchmark baseline for [`rank_all`].
pub fn rank_all_scalar(
    model: &dyn KgeModel,
    triples: &[Triple],
    known: Option<&KnownTriples>,
    threads: usize,
) -> Vec<TripleRanks> {
    let threads = threads.max(1);
    if threads == 1 || triples.len() < 2 * threads {
        let mut scratch = RankScratch::new(model.num_entities());
        return triples
            .iter()
            .map(|&t| rank_triple(model, t, known, &mut scratch))
            .collect();
    }

    let chunk = triples.len().div_ceil(threads);
    let mut results: Vec<Vec<TripleRanks>> = Vec::new();
    kgfd_pool::scope(|scope| {
        let handles: Vec<_> = triples
            .chunks(chunk)
            .map(|part| {
                scope.spawn(move || {
                    let mut scratch = RankScratch::new(model.num_entities());
                    part.iter()
                        .map(|&t| rank_triple(model, t, known, &mut scratch))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            results.push(h.join());
        }
    });
    results.into_iter().flatten().collect()
}

/// Link-prediction metrics broken down by relation — the per-relation view
/// behind analyses like the paper's "runtime scales with the number of
/// relations" and popularity-bias discussions.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct PerRelationSummary {
    /// The relation.
    pub relation: kgfd_kg::RelationId,
    /// Metrics over this relation's triples (both corruption sides).
    pub summary: RankingSummary,
}

/// Evaluates `model` per relation. Relations are reported in ascending id
/// order; relations absent from `triples` are omitted.
pub fn evaluate_per_relation(
    model: &dyn KgeModel,
    triples: &[Triple],
    known: Option<&KnownTriples>,
    threads: usize,
) -> Vec<PerRelationSummary> {
    let ranks = rank_all(model, triples, known, threads);
    let mut by_relation: std::collections::BTreeMap<u32, Vec<f64>> =
        std::collections::BTreeMap::new();
    for (t, r) in triples.iter().zip(&ranks) {
        let bucket = by_relation.entry(t.relation.0).or_default();
        bucket.push(r.subject);
        bucket.push(r.object);
    }
    by_relation
        .into_iter()
        .map(|(rel, ranks)| PerRelationSummary {
            relation: kgfd_kg::RelationId(rel),
            summary: RankingSummary::from_ranks(&ranks),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgfd_datasets::toy_biomedical;
    use kgfd_embed::{train, ModelKind, TrainConfig};

    fn trained() -> (kgfd_kg::Dataset, Box<dyn KgeModel>) {
        let data = toy_biomedical();
        let config = TrainConfig {
            dim: 16,
            epochs: 40,
            seed: 5,
            ..TrainConfig::default()
        };
        let (model, _) = train(ModelKind::DistMult, &data.train, &config);
        (data, model)
    }

    #[test]
    fn parallel_matches_sequential() {
        let (data, model) = trained();
        let known = data.known_triples();
        let seq = rank_all(model.as_ref(), data.train.triples(), Some(&known), 1);
        let par = rank_all(model.as_ref(), data.train.triples(), Some(&known), 4);
        assert_eq!(seq, par);
    }

    #[test]
    fn ranks_are_within_entity_range() {
        let (data, model) = trained();
        let n = data.train.num_entities() as f64;
        for r in rank_all(model.as_ref(), &data.test, None, 2) {
            assert!(r.subject >= 1.0 && r.subject <= n);
            assert!(r.object >= 1.0 && r.object <= n);
        }
    }

    #[test]
    fn filtered_ranks_never_worse_than_raw() {
        let (data, model) = trained();
        let known = data.known_triples();
        let raw = rank_all(model.as_ref(), data.train.triples(), None, 2);
        let filt = rank_all(model.as_ref(), data.train.triples(), Some(&known), 2);
        for (r, f) in raw.iter().zip(&filt) {
            assert!(f.subject <= r.subject + 1e-9);
            assert!(f.object <= r.object + 1e-9);
        }
    }

    #[test]
    fn per_relation_breakdown_partitions_the_ranks() {
        let (data, model) = trained();
        let known = data.known_triples();
        let per_rel = evaluate_per_relation(model.as_ref(), data.train.triples(), Some(&known), 2);
        let overall = evaluate_ranking(model.as_ref(), data.train.triples(), Some(&known), 2);
        let total: usize = per_rel.iter().map(|p| p.summary.count).sum();
        assert_eq!(total, overall.count);
        // Relations are distinct and ascending.
        for w in per_rel.windows(2) {
            assert!(w[0].relation < w[1].relation);
        }
        // Weighted MRR recomposes the overall MRR.
        let weighted: f64 = per_rel
            .iter()
            .map(|p| p.summary.mrr * p.summary.count as f64)
            .sum::<f64>()
            / overall.count as f64;
        assert!((weighted - overall.mrr).abs() < 1e-9);
    }

    #[test]
    fn trained_model_beats_random_rank_on_training_data() {
        let (data, model) = trained();
        let known = data.known_triples();
        let summary = evaluate_ranking(model.as_ref(), data.train.triples(), Some(&known), 2);
        let random_mrr = (1..=data.train.num_entities() as u64)
            .map(|r| 1.0 / r as f64)
            .sum::<f64>()
            / data.train.num_entities() as f64;
        assert!(
            summary.mrr > 2.0 * random_mrr,
            "trained MRR {} vs random {}",
            summary.mrr,
            random_mrr
        );
    }
}
