//! Popularity-stratified evaluation — quantifying the long-tail effect the
//! paper raises in §6 ("fact discovery focuses on dense areas of KGs …
//! leaving out long-tail entities where the need for discovering new facts
//! is higher"), in the spirit of popularity-agnostic KGE evaluation
//! (Mohamed et al. 2020, the paper's [24]).
//!
//! Triples are split into **head** (both entities above the median
//! popularity) / **tail** (both below or equal) / **mixed** strata, and each
//! stratum gets its own metric bundle. A large head–tail MRR gap is the
//! quantitative form of the paper's observation.

use crate::{rank_all, RankingSummary};
use kgfd_embed::KgeModel;
use kgfd_kg::{KnownTriples, Side, Triple, TripleStore};
use serde::{Deserialize, Serialize};

/// Metrics per popularity stratum.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StratifiedSummary {
    /// The popularity cut (median entity occurrence count).
    pub median_popularity: u64,
    /// Triples whose subject *and* object are above the median.
    pub head: RankingSummary,
    /// Triples whose subject *and* object are at or below the median.
    pub tail: RankingSummary,
    /// Everything else.
    pub mixed: RankingSummary,
}

impl StratifiedSummary {
    /// `head MRR − tail MRR`: positive values mean the model serves popular
    /// entities better — the paper's long-tail penalty.
    pub fn popularity_gap(&self) -> f64 {
        self.head.mrr - self.tail.mrr
    }
}

/// Evaluates `model` on `triples`, stratified by entity popularity measured
/// on `train` (occurrence counts over both sides).
pub fn evaluate_stratified(
    model: &dyn KgeModel,
    triples: &[Triple],
    train: &TripleStore,
    known: Option<&KnownTriples>,
    threads: usize,
) -> StratifiedSummary {
    let subj = train.global_side_counts(Side::Subject);
    let obj = train.global_side_counts(Side::Object);
    let popularity: Vec<u64> = subj
        .iter()
        .zip(&obj)
        .map(|(&s, &o)| s as u64 + o as u64)
        .collect();
    let mut sorted: Vec<u64> = popularity.iter().copied().filter(|&c| c > 0).collect();
    sorted.sort_unstable();
    let median = sorted.get(sorted.len() / 2).copied().unwrap_or(0);

    let ranks = rank_all(model, triples, known, threads);
    let mut head = Vec::new();
    let mut tail = Vec::new();
    let mut mixed = Vec::new();
    for (t, r) in triples.iter().zip(&ranks) {
        let ps = popularity[t.subject.index()];
        let po = popularity[t.object.index()];
        let bucket = if ps > median && po > median {
            &mut head
        } else if ps <= median && po <= median {
            &mut tail
        } else {
            &mut mixed
        };
        bucket.push(r.subject);
        bucket.push(r.object);
    }
    StratifiedSummary {
        median_popularity: median,
        head: RankingSummary::from_ranks(&head),
        tail: RankingSummary::from_ranks(&tail),
        mixed: RankingSummary::from_ranks(&mixed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgfd_datasets::{fb15k237_like, generate, mini};
    use kgfd_embed::{train, ModelKind, TrainConfig};

    #[test]
    fn strata_partition_the_triples() {
        let data = generate(&mini(&fb15k237_like())).unwrap();
        let (model, _) = train(
            ModelKind::DistMult,
            &data.train,
            &TrainConfig {
                dim: 16,
                epochs: 5,
                seed: 2,
                ..TrainConfig::default()
            },
        );
        let known = data.known_triples();
        let s = evaluate_stratified(model.as_ref(), &data.test, &data.train, Some(&known), 2);
        let total = s.head.count + s.tail.count + s.mixed.count;
        assert_eq!(total, data.test.len() * 2, "two side-ranks per triple");
        assert!(s.median_popularity > 0);
    }

    #[test]
    fn popular_entities_rank_better_on_skewed_graphs() {
        // The long-tail effect: on a Zipf-skewed graph, trained models serve
        // the head strictly better than the tail.
        let data = generate(&mini(&fb15k237_like())).unwrap();
        let (model, _) = train(
            ModelKind::ComplEx,
            &data.train,
            &TrainConfig {
                dim: 32,
                epochs: 30,
                seed: 4,
                ..TrainConfig::default()
            },
        );
        let known = data.known_triples();
        // Evaluate on training triples: plenty of mass in both strata.
        let s = evaluate_stratified(
            model.as_ref(),
            data.train.triples(),
            &data.train,
            Some(&known),
            4,
        );
        assert!(s.head.count > 0 && s.tail.count > 0);
        assert!(
            s.popularity_gap() > 0.0,
            "head {} vs tail {}",
            s.head.mrr,
            s.tail.mrr
        );
    }

    #[test]
    fn empty_input_yields_empty_strata() {
        let data = kgfd_datasets::toy_biomedical();
        let model = kgfd_embed::new_model(ModelKind::TransE, 16, 5, 8, 0);
        let s = evaluate_stratified(model.as_ref(), &[], &data.train, None, 1);
        assert_eq!(s.head.count + s.tail.count + s.mixed.count, 0);
    }
}
